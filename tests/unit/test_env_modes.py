"""Tests of environment-variable handling and execution modes."""

import pytest

from repro import env
from repro.errors import OmpError
from repro.modes import ALL_MODES, Mode, default_mode


class TestEnvParsing:
    def test_default_num_threads_from_env(self, monkeypatch):
        monkeypatch.setenv("OMP_NUM_THREADS", "6")
        assert env.default_num_threads() == 6

    def test_num_threads_nesting_list_takes_first(self, monkeypatch):
        monkeypatch.setenv("OMP_NUM_THREADS", "4,2,1")
        assert env.default_num_threads() == 4

    def test_num_threads_invalid(self, monkeypatch):
        monkeypatch.setenv("OMP_NUM_THREADS", "zero")
        with pytest.raises(OmpError):
            env.default_num_threads()

    def test_num_threads_nonpositive(self, monkeypatch):
        monkeypatch.setenv("OMP_NUM_THREADS", "0")
        with pytest.raises(OmpError):
            env.default_num_threads()

    def test_num_threads_defaults_to_cpu_count(self, monkeypatch):
        monkeypatch.delenv("OMP_NUM_THREADS", raising=False)
        assert env.default_num_threads() >= 1

    def test_schedule_from_env(self, monkeypatch):
        monkeypatch.setenv("OMP_SCHEDULE", "dynamic,8")
        assert env.default_schedule() == ("dynamic", 8)

    def test_schedule_without_chunk(self, monkeypatch):
        monkeypatch.setenv("OMP_SCHEDULE", "guided")
        assert env.default_schedule() == ("guided", None)

    def test_schedule_rejects_runtime(self):
        with pytest.raises(OmpError):
            env.parse_schedule("runtime")

    def test_schedule_rejects_bad_chunk(self):
        with pytest.raises(OmpError):
            env.parse_schedule("static,-3")

    @pytest.mark.parametrize("raw,expected", [
        ("1", True), ("true", True), ("TRUE", True), ("on", True),
        ("0", False), ("false", False), ("off", False), ("no", False),
    ])
    def test_boolean_variables(self, monkeypatch, raw, expected):
        monkeypatch.setenv("OMP_NESTED", raw)
        assert env.default_nested() is expected

    def test_boolean_invalid(self, monkeypatch):
        monkeypatch.setenv("OMP_DYNAMIC", "perhaps")
        with pytest.raises(OmpError):
            env.default_dynamic()

    def test_thread_limit(self, monkeypatch):
        monkeypatch.setenv("OMP_THREAD_LIMIT", "16")
        assert env.default_thread_limit() == 16

    def test_max_active_levels(self, monkeypatch):
        monkeypatch.setenv("OMP_MAX_ACTIVE_LEVELS", "3")
        assert env.default_max_active_levels() == 3

    def test_decorator_default_bool(self, monkeypatch):
        monkeypatch.setenv("OMP4PY_DUMP", "true")
        assert env.decorator_default("dump", False) is True

    def test_decorator_default_string(self, monkeypatch):
        monkeypatch.setenv("OMP4PY_CACHE", "/tmp/cachedir")
        assert env.decorator_default("cache", None) == "/tmp/cachedir"

    def test_decorator_default_fallback(self, monkeypatch):
        monkeypatch.delenv("OMP4PY_DEBUG", raising=False)
        assert env.decorator_default("debug", False) is False


class TestModeParsing:
    @pytest.mark.parametrize("value,expected", [
        ("pure", Mode.PURE),
        ("Hybrid", Mode.HYBRID),
        ("compiled", Mode.COMPILED),
        ("compileddt", Mode.COMPILED_DT),
        ("compiled_dt", Mode.COMPILED_DT),
        ("COMPILED-DT", Mode.COMPILED_DT),
        ("dt", Mode.COMPILED_DT),
        (0, Mode.PURE),
        (1, Mode.HYBRID),
        (2, Mode.COMPILED),
        (3, Mode.COMPILED_DT),
        (Mode.PURE, Mode.PURE),
    ])
    def test_parse(self, value, expected):
        assert Mode.parse(value) is expected

    def test_parse_unknown_string(self):
        with pytest.raises(OmpError):
            Mode.parse("turbo")

    def test_parse_unknown_number(self):
        with pytest.raises(OmpError):
            Mode.parse(7)

    def test_pyomp_number_rejected(self):
        with pytest.raises(OmpError):
            Mode.parse(-1)

    def test_mode_properties(self):
        assert not Mode.PURE.uses_cruntime
        assert Mode.HYBRID.uses_cruntime
        assert not Mode.HYBRID.compiles_user_code
        assert Mode.COMPILED.compiles_user_code
        assert Mode.COMPILED_DT.compiles_user_code

    def test_all_modes_order_matches_paper(self):
        assert [m.value for m in ALL_MODES] == [
            "pure", "hybrid", "compiled", "compileddt"]

    def test_default_mode_is_hybrid(self, monkeypatch):
        monkeypatch.delenv("OMP4PY_MODE", raising=False)
        assert default_mode() is Mode.HYBRID

    def test_default_mode_from_env(self, monkeypatch):
        monkeypatch.setenv("OMP4PY_MODE", "pure")
        assert default_mode() is Mode.PURE
