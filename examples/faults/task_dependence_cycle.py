"""Seeded fault: a taskwait that can never finish because the task it
waits for is blocked on a lock the waiting thread holds.

Thread 0 takes a lock, submits task P (whose body needs that lock) and
task Q (``depend``-ent on P), then taskwaits *without releasing the
lock*.  Task P is claimed by the other team member and blocks; Q stays
deferred on P; thread 0 sleeps in the taskwait.  The wait-for graph
closes two cycles through the same lock::

    thread 0 -(taskwait)-> task P -(running on)-> thread 1
             -(lock)-> thread 0
    thread 0 -(taskwait)-> task Q -(dependence)-> task P -> ... -> thread 0

Run it under the doctor::

    python -m repro.doctor run examples/faults/task_dependence_cycle.py \
        --watchdog 0.5

Expected doctor verdict: **deadlock** (cycle naming both threads, the
lock, and tasks P and Q), exit code 86.
"""

import time

from repro import (omp, omp_get_thread_num, omp_init_lock, omp_set_lock,
                   omp_unset_lock)


@omp
def dependence_cycle():
    lock = omp_init_lock()
    payload = [0]
    with omp("parallel num_threads(2)"):
        if omp_get_thread_num() == 0:
            omp_set_lock(lock)
            with omp("task depend(out: payload)"):  # task P
                omp_set_lock(lock)  # blocks: thread 0 holds it
                payload[0] += 1
                omp_unset_lock(lock)
            with omp("task depend(in: payload)"):  # task Q, deferred on P
                payload[0] *= 2
            time.sleep(0.2)  # let the peer claim P before we taskwait
            omp("taskwait")  # deadlocks: P needs the lock we hold
            omp_unset_lock(lock)


if __name__ == "__main__":
    print("taskwaiting on a task that needs our lock...", flush=True)
    dependence_cycle()
    print("unreachable: the region above deadlocks")
