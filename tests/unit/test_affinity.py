"""Tests of the affinity subsystem: OMP_PLACES parsing, the proc-bind
placement math, and the binder's graceful degradation."""

import pytest

from repro import env
from repro.affinity import binder, binder_from_env, places
from repro.affinity.binder import Binder, place_for_member
from repro.affinity.places import format_places, parse_places
from repro.errors import OmpError

CPUS = (0, 1, 2, 3)


# -- OMP_PLACES parsing -----------------------------------------------------


class TestExplicitPlaces:
    def test_simple_sets(self):
        assert parse_places("{0,1},{2,3}", cpus=CPUS) == ((0, 1), (2, 3))

    def test_singletons(self):
        assert parse_places("{0},{2}", cpus=CPUS) == ((0,), (2,))

    def test_interval(self):
        assert parse_places("{0:4}", cpus=CPUS) == ((0, 1, 2, 3),)

    def test_interval_with_stride(self):
        assert parse_places("{0:2:2},{1:2:2}", cpus=CPUS) \
            == ((0, 2), (1, 3))

    def test_mixed_resources_and_whitespace(self):
        assert parse_places(" {0, 2:2} , {1} ", cpus=CPUS) \
            == ((0, 2, 3), (1,))

    def test_duplicates_collapse(self):
        assert parse_places("{0,0,1}", cpus=CPUS) == ((0, 1),)

    @pytest.mark.parametrize("spec", [
        "",            # empty
        "banana",      # unknown abstract name
        "{}",          # empty place
        "{0:0}",       # zero-length interval
        "{0:2:0}",     # zero stride
        "{1,2",        # unbalanced braces
        "0,1",         # bare numbers without braces
        "{-1}",        # negative CPU
        "{0:3:-1}",    # stride walks below CPU 0
        "{a,b}",       # non-numeric
        "{0}:2",       # place-level len suffix (unsupported)
    ])
    def test_invalid_specs_raise_omp_error(self, spec):
        with pytest.raises(OmpError):
            parse_places(spec, cpus=CPUS)


class TestAbstractPlaces:
    def test_threads_one_place_per_cpu(self):
        assert parse_places("threads", cpus=CPUS) \
            == ((0,), (1,), (2,), (3,))

    def test_cores_alias(self):
        assert parse_places("cores", cpus=CPUS) \
            == ((0,), (1,), (2,), (3,))

    def test_count_truncates(self):
        assert parse_places("threads(2)", cpus=CPUS) == ((0,), (1,))

    def test_sockets_groups_all_cpus(self):
        grouped = parse_places("sockets", cpus=CPUS)
        assert sorted(cpu for place in grouped for cpu in place) \
            == list(CPUS)

    def test_case_insensitive(self):
        assert parse_places("THREADS", cpus=CPUS) \
            == parse_places("threads", cpus=CPUS)

    def test_zero_count_rejected(self):
        with pytest.raises(OmpError):
            parse_places("threads(0)", cpus=CPUS)


class TestFormatPlaces:
    def test_round_trip(self):
        spec = "{0,1},{2,3}"
        assert format_places(parse_places(spec, cpus=CPUS)) == spec

    def test_empty(self):
        assert format_places(()) == ""


# -- proc-bind placement math -----------------------------------------------


class TestPlaceForMember:
    def test_primary_collapses_to_place_zero(self):
        assert [place_for_member(t, 4, 4, "primary")
                for t in range(4)] == [0, 0, 0, 0]

    def test_close_assigns_consecutively_and_wraps(self):
        assert [place_for_member(t, 4, 2, "close")
                for t in range(4)] == [0, 1, 0, 1]

    def test_spread_spaces_members_out(self):
        assert [place_for_member(t, 2, 4, "spread")
                for t in range(2)] == [0, 2]

    def test_spread_degrades_to_close_when_team_outgrows_places(self):
        assert [place_for_member(t, 4, 2, "spread")
                for t in range(4)] == [0, 1, 0, 1]

    def test_no_places_means_unbound(self):
        assert place_for_member(0, 2, 0, "close") == -1


# -- the binder -------------------------------------------------------------


class TestBinder:
    def test_disabled_without_places(self):
        bound = Binder((), "close")
        assert not bound.enabled
        assert bound.bind_current(0, 2) is None
        assert bound.place_num() == -1

    def test_disabled_when_bind_false(self):
        bound = Binder(((0,), (1,)), "false")
        assert not bound.enabled

    def test_bookkeeping_without_sched_setaffinity(self, monkeypatch):
        """Platforms without sched_setaffinity keep the place
        accounting (omp_get_place_num answers) but skip the syscall."""
        monkeypatch.setattr(binder, "HAVE_SCHED_AFFINITY", False)
        bound = Binder(((0,), (1,)), "close")
        assert bound.enabled
        assert bound.bind_current(1, 2) == 1
        assert bound.place_num() == 1

    def test_failed_syscall_degrades_to_unbound(self, monkeypatch):
        monkeypatch.setattr(binder, "HAVE_SCHED_AFFINITY", True)

        def refuse(pid, cpus):
            raise OSError("EPERM")

        monkeypatch.setattr(binder.os, "sched_setaffinity", refuse,
                            raising=False)
        bound = Binder(((0,), (1,)), "close")
        assert bound.bind_current(1, 2) is None
        assert bound.place_num() == -1

    def test_rebind_same_place_is_cached(self, monkeypatch):
        monkeypatch.setattr(binder, "HAVE_SCHED_AFFINITY", False)
        bound = Binder(((0,),), "primary")
        assert bound.bind_current(0, 2) == 0
        assert bound.bind_current(0, 2) == 0  # cache hit, same answer


# -- env plumbing -----------------------------------------------------------


class TestEnvKnobs:
    def test_binder_from_env_defaults_off(self, monkeypatch):
        monkeypatch.delenv("OMP_PLACES", raising=False)
        monkeypatch.delenv("OMP_PROC_BIND", raising=False)
        bound = binder_from_env()
        assert bound.places == ()
        assert bound.proc_bind == "false"
        assert not bound.enabled

    def test_places_implies_binding(self, monkeypatch):
        monkeypatch.setenv("OMP_PLACES", "{0}")
        monkeypatch.delenv("OMP_PROC_BIND", raising=False)
        bound = binder_from_env()
        assert bound.places == ((0,),)
        assert bound.proc_bind == "close"
        assert bound.enabled

    def test_master_normalizes_to_primary(self, monkeypatch):
        monkeypatch.setenv("OMP_PROC_BIND", "master")
        assert env.default_proc_bind() == "primary"

    def test_true_normalizes_to_close(self, monkeypatch):
        monkeypatch.setenv("OMP_PROC_BIND", "true")
        assert env.default_proc_bind() == "close"

    def test_invalid_proc_bind_raises(self, monkeypatch):
        monkeypatch.setenv("OMP_PROC_BIND", "diagonal")
        with pytest.raises(OmpError):
            env.default_proc_bind()

    def test_wait_policy_values(self, monkeypatch):
        monkeypatch.delenv("OMP_WAIT_POLICY", raising=False)
        assert env.default_wait_policy() == "passive"
        monkeypatch.setenv("OMP_WAIT_POLICY", "ACTIVE")
        assert env.default_wait_policy() == "active"
        monkeypatch.setenv("OMP_WAIT_POLICY", "busy")
        with pytest.raises(OmpError):
            env.default_wait_policy()

    def test_hot_teams_knob(self, monkeypatch):
        monkeypatch.delenv("OMP4PY_HOT_TEAMS", raising=False)
        assert env.default_hot_teams() is True
        monkeypatch.setenv("OMP4PY_HOT_TEAMS", "0")
        assert env.default_hot_teams() is False

    def test_pool_idle_timeout_knob(self, monkeypatch):
        monkeypatch.delenv("OMP4PY_POOL_IDLE_TIMEOUT", raising=False)
        assert env.pool_idle_timeout() == 30.0
        monkeypatch.setenv("OMP4PY_POOL_IDLE_TIMEOUT", "0.5")
        assert env.pool_idle_timeout() == 0.5
        monkeypatch.setenv("OMP4PY_POOL_IDLE_TIMEOUT", "-1")
        with pytest.raises(OmpError):
            env.pool_idle_timeout()

    def test_available_cpus_nonempty_sorted(self):
        cpus = places.available_cpus()
        assert cpus and list(cpus) == sorted(cpus)


# -- runtime API surface ----------------------------------------------------


class TestRuntimeApi:
    def test_api_functions_exported(self):
        from repro.api import omp_get_num_places, omp_get_place_num
        assert isinstance(omp_get_num_places(), int)
        assert isinstance(omp_get_place_num(), int)

    def test_runtime_reports_binder_state(self):
        from repro.runtime import pure_runtime as rt

        prior = rt._binder
        rt._binder = Binder(((0,), (1,)), "spread")
        try:
            assert rt.get_num_places() == 2
            assert rt.get_proc_bind() == "spread"
        finally:
            rt._binder = prior
        assert rt.get_wait_policy() in ("active", "passive")
