"""Pure-mode entry point (the paper's ``import omp4py.pure``).

Importing this module gives an ``omp`` decorator that defaults to the
*Pure* execution mode and ``omp_*`` functions bound to the pure-Python
runtime — guaranteeing no native-simulation code runs.
"""

from __future__ import annotations

import functools

from repro import api
from repro.modes import Mode
from repro.runtime import pure_runtime
from repro.transform.api_map import OMP_API_METHODS


def omp(target=None, /, **options):
    """Like :func:`repro.omp`, but defaulting to *Pure* mode."""
    if isinstance(target, str):
        return api.omp(target)
    options.setdefault("mode", Mode.PURE)
    if target is None:
        return lambda obj: api.omp(obj, **options)
    return api.omp(target, **options)


def _bind(method_name: str):
    method = getattr(pure_runtime, method_name)

    @functools.wraps(method)
    def bound(*args, **kwargs):
        return method(*args, **kwargs)

    return bound


_PURE_FUNCTIONS = {public: _bind(method)
                   for public, method in OMP_API_METHODS.items()}
globals().update(_PURE_FUNCTIONS)

__all__ = ["omp", *_PURE_FUNCTIONS]
