"""Molecular dynamics with velocity Verlet (the paper's *md*).

Paper configuration: 8000 particles, central pair potential, velocity
Verlet integration; constructs: ``parallel reduction(+)`` with an inner
``for``, plus a ``parallel for`` (Table I).

The pair potential is harmonic around ``d0`` (a central potential, as
in the classic OpenMP md benchmark); forces and potential energy come
from the all-pairs inner loop, kinetic energy from the update loop's
reduction.
"""

from __future__ import annotations

import math
import random

import numpy as np

from repro.apps.base import AppSpec
from repro.api import omp

D0 = 1.0  # equilibrium pair distance
DT = 1e-4
MASS = 1.0


def make_particles(n: int, seed: int = 97):
    rng = random.Random(seed)
    side = max(1.0, n ** (1.0 / 3.0))
    pos = [[rng.uniform(0.0, side) for _ in range(n)] for _ in range(3)]
    vel = [[rng.uniform(-1.0, 1.0) for _ in range(n)] for _ in range(3)]
    acc = [[0.0] * n for _ in range(3)]
    return pos, vel, acc


def make_input(n: int, steps: int = 2, seed: int = 97) -> dict:
    pos, vel, acc = make_particles(n, seed)
    return {"px": pos[0], "py": pos[1], "pz": pos[2],
            "vx": vel[0], "vy": vel[1], "vz": vel[2],
            "ax": acc[0], "ay": acc[1], "az": acc[2],
            "n": n, "steps": steps}


def make_input_dt(n: int, steps: int = 2, seed: int = 97) -> dict:
    plain = make_input(n, steps, seed)
    return {key: (np.array(value) if isinstance(value, list) else value)
            for key, value in plain.items()}


def _forces_seq(px, py, pz, ax, ay, az, n):
    potential = 0.0
    for i in range(n):
        fx = fy = fz = 0.0
        for j in range(n):
            if j == i:
                continue
            dx = px[i] - px[j]
            dy = py[i] - py[j]
            dz = pz[i] - pz[j]
            d = math.sqrt(dx * dx + dy * dy + dz * dz)
            potential += 0.25 * (d - D0) * (d - D0)
            pull = (D0 - d) / d
            fx += pull * dx
            fy += pull * dy
            fz += pull * dz
        ax[i] = fx / MASS
        ay[i] = fy / MASS
        az[i] = fz / MASS
    return potential


def sequential(px, py, pz, vx, vy, vz, ax, ay, az, n, steps):
    potential = _forces_seq(px, py, pz, ax, ay, az, n)
    kinetic = 0.0
    for _step in range(steps):
        for i in range(n):
            px[i] += vx[i] * DT + 0.5 * ax[i] * DT * DT
            py[i] += vy[i] * DT + 0.5 * ay[i] * DT * DT
            pz[i] += vz[i] * DT + 0.5 * az[i] * DT * DT
            vx[i] += 0.5 * ax[i] * DT
            vy[i] += 0.5 * ay[i] * DT
            vz[i] += 0.5 * az[i] * DT
        potential = _forces_seq(px, py, pz, ax, ay, az, n)
        kinetic = 0.0
        for i in range(n):
            vx[i] += 0.5 * ax[i] * DT
            vy[i] += 0.5 * ay[i] * DT
            vz[i] += 0.5 * az[i] * DT
            kinetic += 0.5 * MASS * (vx[i] * vx[i] + vy[i] * vy[i]
                                     + vz[i] * vz[i])
    return potential, kinetic


def kernel(px, py, pz, vx, vy, vz, ax, ay, az, n, steps, threads):
    import math
    d0 = 1.0
    dt = 1e-4
    potential = 0.0
    kinetic = 0.0
    with omp("parallel num_threads(threads) reduction(+:potential)"):
        with omp("for"):
            for i in range(n):
                fx = 0.0
                fy = 0.0
                fz = 0.0
                for j in range(n):
                    dx = px[i] - px[j]
                    dy = py[i] - py[j]
                    dz = pz[i] - pz[j]
                    mask = 0.0 if j == i else 1.0
                    d = math.sqrt(dx * dx + dy * dy + dz * dz
                                  + (1.0 - mask))
                    potential += mask * 0.25 * (d - d0) * (d - d0)
                    pull = mask * (d0 - d) / d
                    fx += pull * dx
                    fy += pull * dy
                    fz += pull * dz
                ax[i] = fx
                ay[i] = fy
                az[i] = fz
    for _step in range(steps):
        with omp("parallel for num_threads(threads)"):
            for i in range(n):
                px[i] += vx[i] * dt + 0.5 * ax[i] * dt * dt
                py[i] += vy[i] * dt + 0.5 * ay[i] * dt * dt
                pz[i] += vz[i] * dt + 0.5 * az[i] * dt * dt
                vx[i] += 0.5 * ax[i] * dt
                vy[i] += 0.5 * ay[i] * dt
                vz[i] += 0.5 * az[i] * dt
        potential = 0.0
        with omp("parallel num_threads(threads) reduction(+:potential)"):
            with omp("for"):
                for i in range(n):
                    fx = 0.0
                    fy = 0.0
                    fz = 0.0
                    for j in range(n):
                        dx = px[i] - px[j]
                        dy = py[i] - py[j]
                        dz = pz[i] - pz[j]
                        mask = 0.0 if j == i else 1.0
                        d = math.sqrt(dx * dx + dy * dy + dz * dz
                                      + (1.0 - mask))
                        potential += mask * 0.25 * (d - d0) * (d - d0)
                        pull = mask * (d0 - d) / d
                        fx += pull * dx
                        fy += pull * dy
                        fz += pull * dz
                    ax[i] = fx
                    ay[i] = fy
                    az[i] = fz
        kinetic = 0.0
        with omp("parallel for num_threads(threads) reduction(+:kinetic)"):
            for i in range(n):
                vx[i] += 0.5 * ax[i] * dt
                vy[i] += 0.5 * ay[i] * dt
                vz[i] += 0.5 * az[i] * dt
                kinetic += 0.5 * (vx[i] * vx[i] + vy[i] * vy[i]
                                  + vz[i] * vz[i])
    return potential, kinetic


def kernel_dt(px, py, pz, vx, vy, vz, ax, ay, az, n, steps, threads):
    import math
    d0: float = 1.0
    dt: float = 1e-4
    potential: float = 0.0
    kinetic: float = 0.0
    with omp("parallel num_threads(threads) reduction(+:potential)"):
        with omp("for"):
            for i in range(n):
                xi: float = px[i]
                yi: float = py[i]
                zi: float = pz[i]
                fx: float = 0.0
                fy: float = 0.0
                fz: float = 0.0
                for j in range(n):
                    dx = xi - px[j]
                    dy = yi - py[j]
                    dz = zi - pz[j]
                    mask = 0.0 if j == i else 1.0
                    d = math.sqrt(dx * dx + dy * dy + dz * dz
                                  + (1.0 - mask))
                    potential += mask * 0.25 * (d - d0) * (d - d0)
                    pull = mask * (d0 - d) / d
                    fx += pull * dx
                    fy += pull * dy
                    fz += pull * dz
                ax[i] = fx
                ay[i] = fy
                az[i] = fz
    for _step in range(steps):
        with omp("parallel for num_threads(threads)"):
            for i in range(n):
                px[i] += vx[i] * dt + 0.5 * ax[i] * dt * dt
                py[i] += vy[i] * dt + 0.5 * ay[i] * dt * dt
                pz[i] += vz[i] * dt + 0.5 * az[i] * dt * dt
                vx[i] += 0.5 * ax[i] * dt
                vy[i] += 0.5 * ay[i] * dt
                vz[i] += 0.5 * az[i] * dt
        potential = 0.0
        with omp("parallel num_threads(threads) reduction(+:potential)"):
            with omp("for"):
                for i in range(n):
                    xi2: float = px[i]
                    yi2: float = py[i]
                    zi2: float = pz[i]
                    fx2: float = 0.0
                    fy2: float = 0.0
                    fz2: float = 0.0
                    for j in range(n):
                        dx = xi2 - px[j]
                        dy = yi2 - py[j]
                        dz = zi2 - pz[j]
                        mask = 0.0 if j == i else 1.0
                        d = math.sqrt(dx * dx + dy * dy + dz * dz
                                      + (1.0 - mask))
                        potential += mask * 0.25 * (d - d0) * (d - d0)
                        pull = mask * (d0 - d) / d
                        fx2 += pull * dx
                        fy2 += pull * dy
                        fz2 += pull * dz
                    ax[i] = fx2
                    ay[i] = fy2
                    az[i] = fz2
        kinetic = 0.0
        with omp("parallel for num_threads(threads) reduction(+:kinetic)"):
            for i in range(n):
                vx[i] += 0.5 * ax[i] * dt
                vy[i] += 0.5 * ay[i] * dt
                vz[i] += 0.5 * az[i] * dt
                kinetic += 0.5 * (vx[i] * vx[i] + vy[i] * vy[i]
                                  + vz[i] * vz[i])
    return potential, kinetic


def _verlet(px, py, pz, vx, vy, vz, ax, ay, az, n, steps, forces):
    """Velocity-Verlet driver around a pluggable force routine.

    The force phase is the O(n²) heart of md (and the part the
    critical/planned variants differ in); the O(n) position/velocity
    updates are shared serial glue.
    """
    potential = forces()
    kinetic = 0.0
    for _step in range(steps):
        for i in range(n):
            px[i] += vx[i] * DT + 0.5 * ax[i] * DT * DT
            py[i] += vy[i] * DT + 0.5 * ay[i] * DT * DT
            pz[i] += vz[i] * DT + 0.5 * az[i] * DT * DT
            vx[i] += 0.5 * ax[i] * DT
            vy[i] += 0.5 * ay[i] * DT
            vz[i] += 0.5 * az[i] * DT
        potential = forces()
        kinetic = 0.0
        for i in range(n):
            vx[i] += 0.5 * ax[i] * DT
            vy[i] += 0.5 * ay[i] * DT
            vz[i] += 0.5 * az[i] * DT
            kinetic += 0.5 * MASS * (vx[i] * vx[i] + vy[i] * vy[i]
                                     + vz[i] * vz[i])
    return potential, kinetic


def _pair_interaction(px, py, pz, i, j):
    """Force and potential of one unordered pair (Newton's third law:
    the same interaction serves both particles)."""
    dx = px[i] - px[j]
    dy = py[i] - py[j]
    dz = pz[i] - pz[j]
    d = math.sqrt(dx * dx + dy * dy + dz * dz)
    pull = (D0 - d) / d
    # Each unordered pair carries both ordered contributions:
    # 2 * 0.25 * (d - d0)^2.
    return pull * dx, pull * dy, pull * dz, 0.5 * (d - D0) * (d - D0)


def kernel_pairs_critical(px, py, pz, vx, vy, vz, ax, ay, az, n, steps,
                          threads, runtime=None):
    """Half-pair force baseline: Newton's-third-law scatter under a
    ``critical``.

    Each thread owns a block of ``i`` rows, computes every ``j > i``
    interaction once, and scatters the reaction forces into per-thread
    arrays; the arrays then merge into the shared accelerations under
    ``critical(md_forces)`` — the serialized accumulation the plan
    variant eliminates.
    """
    if runtime is None:
        from repro.runtime import pure_runtime as runtime
    nthreads = max(1, threads)
    state = {"potential": 0.0}

    def forces():
        for i in range(n):
            ax[i] = 0.0
            ay[i] = 0.0
            az[i] = 0.0
        state["potential"] = 0.0

        def member():
            thread_num = runtime.get_thread_num()
            size = runtime.get_num_threads()
            fx = [0.0] * n
            fy = [0.0] * n
            fz = [0.0] * n
            local = 0.0
            for i in range(thread_num, n, size):
                for j in range(i + 1, n):
                    gx, gy, gz, pot = _pair_interaction(px, py, pz, i, j)
                    fx[i] += gx
                    fy[i] += gy
                    fz[i] += gz
                    fx[j] -= gx
                    fy[j] -= gy
                    fz[j] -= gz
                    local += pot
            runtime.critical_enter("md_forces")
            try:
                for i in range(n):
                    ax[i] += fx[i] / MASS
                    ay[i] += fy[i] / MASS
                    az[i] += fz[i] / MASS
                state["potential"] += local
            finally:
                runtime.critical_exit("md_forces")

        runtime.parallel_run(member, num_threads=nthreads)
        return state["potential"]

    return _verlet(px, py, pz, vx, vy, vz, ax, ay, az, n, steps, forces)


def pair_block_map(n: int, block: int):
    """The planned force kernel's indirection map: iteration = one
    (block_i, block_j) tile of the half-pair triangle, elements = the
    two particle blocks it scatters forces into."""
    from repro.plan import Map
    nblocks = (n + block - 1) // block
    return Map("md-pair-blocks",
               [(bi, bj) for bi in range(nblocks)
                for bj in range(bi, nblocks)])


def kernel_planned(px, py, pz, vx, vy, vz, ax, ay, az, n, steps,
                   threads, runtime=None, block: int | None = None):
    """Inspector–executor md: pair-block coloring replaces the force
    ``critical``.

    Half-pair tiles touch exactly two particle blocks; the plan colors
    tiles so no two same-color tiles share a block, letting every tile
    scatter Newton's-third-law reactions straight into the shared
    acceleration arrays — no critical, no per-thread force copies.
    The tile map is built once and ``plan_for`` is called every
    timestep, so step one is the inspector and every later step is a
    plan-cache hit; the potential reduction pads per-thread partials
    to cache-line stride.
    """
    from repro.atomics import PaddedAccumulator
    from repro.plan import execute, plan_for

    if runtime is None:
        from repro.runtime import pure_runtime as runtime
    nthreads = max(1, threads)
    if block is None:
        block = max(1, (n + 2 * nthreads - 1) // (2 * nthreads))
    the_map = pair_block_map(n, block)
    pairs = the_map.entries
    potential = PaddedAccumulator(nthreads)

    def body(lo, hi, thread_num):
        for index in range(lo, hi):
            bi, bj = pairs[index]
            i_lo, i_hi = bi * block, min((bi + 1) * block, n)
            j_hi = min((bj + 1) * block, n)
            local = 0.0
            for i in range(i_lo, i_hi):
                j_lo = max(i + 1, bj * block)
                for j in range(j_lo, j_hi):
                    gx, gy, gz, pot = _pair_interaction(px, py, pz, i, j)
                    ax[i] += gx / MASS
                    ay[i] += gy / MASS
                    az[i] += gz / MASS
                    ax[j] -= gx / MASS
                    ay[j] -= gy / MASS
                    az[j] -= gz / MASS
                    local += pot
            potential.add(thread_num, local)

    def forces():
        for i in range(n):
            ax[i] = 0.0
            ay[i] = 0.0
            az[i] = 0.0
        potential.reset()
        plan = plan_for(the_map, 1, runtime=runtime)
        execute(plan, body, threads=nthreads, runtime=runtime)
        return potential.total()

    return _verlet(px, py, pz, vx, vy, vz, ax, ay, az, n, steps, forces)


def pyomp_kernel(px, py, pz, vx, vy, vz, ax, ay, az, n, steps, threads):
    # Same computation as kernel_dt, in PyOMP spelling, so the paper's
    # performance comparison is over identical work.
    import math
    d0: float = 1.0
    dt: float = 1e-4
    potential: float = 0.0
    kinetic: float = 0.0
    with openmp("parallel num_threads(threads) "  # noqa: F821
                "reduction(+:potential)"):
        with openmp("for"):  # noqa: F821
            for i in range(n):
                xi: float = px[i]
                yi: float = py[i]
                zi: float = pz[i]
                fx: float = 0.0
                fy: float = 0.0
                fz: float = 0.0
                for j in range(n):
                    dx = xi - px[j]
                    dy = yi - py[j]
                    dz = zi - pz[j]
                    mask = 0.0 if j == i else 1.0
                    d = math.sqrt(dx * dx + dy * dy + dz * dz
                                  + (1.0 - mask))
                    potential += mask * 0.25 * (d - d0) * (d - d0)
                    pull = mask * (d0 - d) / d
                    fx += pull * dx
                    fy += pull * dy
                    fz += pull * dz
                ax[i] = fx
                ay[i] = fy
                az[i] = fz
    for _step in range(steps):
        with openmp("parallel for num_threads(threads)"):  # noqa: F821
            for i in range(n):
                px[i] += vx[i] * dt + 0.5 * ax[i] * dt * dt
                py[i] += vy[i] * dt + 0.5 * ay[i] * dt * dt
                pz[i] += vz[i] * dt + 0.5 * az[i] * dt * dt
                vx[i] += 0.5 * ax[i] * dt
                vy[i] += 0.5 * ay[i] * dt
                vz[i] += 0.5 * az[i] * dt
        potential = 0.0
        with openmp("parallel num_threads(threads) "  # noqa: F821
                    "reduction(+:potential)"):
            with openmp("for"):  # noqa: F821
                for i in range(n):
                    xi2: float = px[i]
                    yi2: float = py[i]
                    zi2: float = pz[i]
                    fx2: float = 0.0
                    fy2: float = 0.0
                    fz2: float = 0.0
                    for j in range(n):
                        dx = xi2 - px[j]
                        dy = yi2 - py[j]
                        dz = zi2 - pz[j]
                        mask = 0.0 if j == i else 1.0
                        d = math.sqrt(dx * dx + dy * dy + dz * dz
                                      + (1.0 - mask))
                        potential += mask * 0.25 * (d - d0) * (d - d0)
                        pull = mask * (d0 - d) / d
                        fx2 += pull * dx
                        fy2 += pull * dy
                        fz2 += pull * dz
                    ax[i] = fx2
                    ay[i] = fy2
                    az[i] = fz2
        kinetic = 0.0
        with openmp("parallel for num_threads(threads) "  # noqa: F821
                    "reduction(+:kinetic)"):
            for i in range(n):
                vx[i] += 0.5 * ax[i] * dt
                vy[i] += 0.5 * ay[i] * dt
                vz[i] += 0.5 * az[i] * dt
                kinetic += 0.5 * (vx[i] * vx[i] + vy[i] * vy[i]
                                  + vz[i] * vz[i])
    return potential, kinetic


def verify(result, reference) -> bool:
    potential, kinetic = result
    ref_potential, ref_kinetic = reference
    return (abs(potential - ref_potential)
            <= 1e-6 * max(1.0, abs(ref_potential))
            and abs(kinetic - ref_kinetic)
            <= 1e-6 * max(1.0, abs(ref_kinetic)))


SPEC = AppSpec(
    name="md",
    title="Molecular dynamics",
    make_input=make_input,
    make_input_dt=make_input_dt,
    sequential=sequential,
    kernel=kernel,
    kernel_dt=kernel_dt,
    pyomp=pyomp_kernel,
    verify=verify,
    sizes={
        "test": {"n": 48, "steps": 2},
        "default": {"n": 512, "steps": 2},
        "paper": {"n": 8000, "steps": 10},
    },
    table1=("parallel reduction(+) with inner for, parallel for",
            "Implicit barriers"),
)
