"""Compare two sweep JSON files (regression detection).

``python -m repro.analysis.compare old.json new.json [--threshold 1.3]``
reads two files produced by ``report fig5/fig6 --json`` and reports, per
(app, series, threads) cell, the projected-time ratio new/old, flagging
regressions beyond the threshold and verification status changes.
"""

from __future__ import annotations

import argparse
import dataclasses
import json


@dataclasses.dataclass
class CellDelta:
    app: str
    series: str
    threads: int
    old: float | None
    new: float | None

    @property
    def ratio(self) -> float | None:
        if self.old and self.new:
            return self.new / self.old
        return None


def load_cells(path: str) -> dict[tuple, dict]:
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    cells: dict[tuple, dict] = {}
    for app, rows in payload.items():
        for row in rows:
            cells[app, row["series"], row["threads"]] = row
    return cells


def compare(old_path: str, new_path: str) -> list[CellDelta]:
    old_cells = load_cells(old_path)
    new_cells = load_cells(new_path)
    deltas = []
    for key in sorted(set(old_cells) | set(new_cells)):
        app, series, threads = key
        old_row = old_cells.get(key)
        new_row = new_cells.get(key)
        deltas.append(CellDelta(
            app=app, series=series, threads=threads,
            old=old_row.get("projected_s") if old_row else None,
            new=new_row.get("projected_s") if new_row else None))
    return deltas


def render(deltas: list[CellDelta], threshold: float) -> tuple[str, int]:
    lines = [f"{'app':<12}{'series':<12}{'thr':>4}{'old[s]':>11}"
             f"{'new[s]':>11}{'ratio':>8}"]
    regressions = 0
    for delta in deltas:
        ratio = delta.ratio
        flag = ""
        if ratio is None:
            flag = "  (missing)"
        elif ratio > threshold:
            flag = "  << REGRESSION"
            regressions += 1
        elif ratio < 1 / threshold:
            flag = "  improved"
        old_text = f"{delta.old:.4f}" if delta.old else "-"
        new_text = f"{delta.new:.4f}" if delta.new else "-"
        ratio_text = f"{ratio:.2f}x" if ratio else "-"
        lines.append(f"{delta.app:<12}{delta.series:<12}"
                     f"{delta.threads:>4}{old_text:>11}{new_text:>11}"
                     f"{ratio_text:>8}{flag}")
    lines.append(f"\n{regressions} regression(s) beyond "
                 f"{threshold:.2f}x")
    return "\n".join(lines), regressions


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.compare", description=__doc__)
    parser.add_argument("old")
    parser.add_argument("new")
    parser.add_argument("--threshold", type=float, default=1.3,
                        help="ratio above which a cell is a regression")
    args = parser.parse_args(argv)
    text, regressions = render(compare(args.old, args.new),
                               args.threshold)
    print(text)
    if regressions:
        raise SystemExit(1)


if __name__ == "__main__":
    main()
