"""Tests of the execution-backend detection (repro.runtime.gilstate)."""

import pytest

from repro import env
from repro.errors import OmpError
from repro.runtime import gilstate
from repro.runtime.gilstate import Backend, detect_backend


@pytest.fixture
def gil_interpreter(monkeypatch):
    """Pretend the interpreter runs with the GIL enabled."""
    monkeypatch.setattr(gilstate, "gil_enabled_now", lambda: True)
    monkeypatch.setattr(gilstate, "build_is_free_threaded",
                        lambda: False)


@pytest.fixture
def nogil_interpreter(monkeypatch):
    """Pretend the interpreter runs free-threaded."""
    monkeypatch.setattr(gilstate, "gil_enabled_now", lambda: False)
    monkeypatch.setattr(gilstate, "build_is_free_threaded",
                        lambda: True)


class TestDetection:
    def test_auto_on_gil_interpreter(self, gil_interpreter):
        assert detect_backend("auto") is Backend.GIL

    def test_auto_on_nogil_interpreter(self, nogil_interpreter):
        assert detect_backend("auto") is Backend.NOGIL

    def test_auto_without_runtime_probe_uses_build_flag(self, monkeypatch):
        # Pre-3.13 interpreters have no sys._is_gil_enabled: the build
        # flag decides.
        monkeypatch.setattr(gilstate, "gil_enabled_now", lambda: None)
        monkeypatch.setattr(gilstate, "build_is_free_threaded",
                            lambda: True)
        assert detect_backend("auto") is Backend.NOGIL
        monkeypatch.setattr(gilstate, "build_is_free_threaded",
                            lambda: False)
        assert detect_backend("auto") is Backend.GIL

    def test_runtime_probe_wins_over_build_flag(self, monkeypatch):
        # A free-threaded build whose GIL was re-enabled (PYTHON_GIL=1
        # or an incompatible extension) must report gil.
        monkeypatch.setattr(gilstate, "gil_enabled_now", lambda: True)
        monkeypatch.setattr(gilstate, "build_is_free_threaded",
                            lambda: True)
        assert detect_backend("auto") is Backend.GIL

    def test_this_interpreter_detects_something(self):
        assert detect_backend("auto") in (Backend.GIL, Backend.NOGIL)


class TestOverride:
    def test_force_gil_always_allowed(self, nogil_interpreter):
        assert detect_backend("gil") is Backend.GIL

    def test_force_nogil_on_nogil(self, nogil_interpreter):
        assert detect_backend("nogil") is Backend.NOGIL

    def test_force_nogil_on_gil_interpreter_errors(self, gil_interpreter):
        with pytest.raises(OmpError, match="GIL enabled"):
            detect_backend("nogil")

    def test_env_knob_feeds_default_spec(self, monkeypatch,
                                         gil_interpreter):
        monkeypatch.setenv("OMP4PY_BACKEND", "gil")
        assert detect_backend() is Backend.GIL

    def test_env_knob_invalid_value(self, monkeypatch):
        monkeypatch.setenv("OMP4PY_BACKEND", "subinterpreters")
        with pytest.raises(OmpError, match="OMP4PY_BACKEND"):
            env.backend_spec()

    def test_env_knob_unset_is_auto(self, monkeypatch):
        monkeypatch.delenv("OMP4PY_BACKEND", raising=False)
        assert env.backend_spec() == "auto"

    def test_refresh_recaches(self, monkeypatch, nogil_interpreter):
        monkeypatch.setattr(gilstate, "_current", None)
        assert gilstate.current_backend() is Backend.NOGIL
        assert gilstate._current is Backend.NOGIL
        refreshed = gilstate.refresh_backend("gil")
        assert refreshed is Backend.GIL
        assert gilstate.current_backend() is Backend.GIL


class TestBackendProperties:
    def test_measures_parallelism(self):
        assert Backend.NOGIL.measures_parallelism
        assert not Backend.GIL.measures_parallelism

    def test_runtime_carries_backend(self):
        from repro.runtime import pure_runtime
        assert pure_runtime.backend in (Backend.GIL, Backend.NOGIL)

    def test_pool_snapshot_reports_backend(self):
        from repro.runtime import pure_runtime
        pure_runtime.parallel_run(lambda: None, num_threads=2)
        assert pure_runtime.pool().snapshot()["backend"] \
            == pure_runtime.backend.value

    def test_display_env_includes_backend(self, capsys):
        from repro.runtime import pure_runtime
        pure_runtime.display_env(verbose=True)
        err = capsys.readouterr().err
        assert "OMP4PY_EXECUTION_BACKEND" in err


class TestAvailableCpus:
    def test_positive(self):
        assert env.available_cpus() >= 1
        assert gilstate.available_cpus() == env.available_cpus()

    def test_prefers_process_cpu_count(self, monkeypatch):
        import os
        monkeypatch.setattr(os, "process_cpu_count", lambda: 3,
                            raising=False)
        assert env.available_cpus() == 3

    def test_num_procs_uses_available_cpus(self, monkeypatch):
        import os
        from repro.runtime import pure_runtime
        monkeypatch.setattr(os, "process_cpu_count", lambda: 5,
                            raising=False)
        assert pure_runtime.get_num_procs() == 5

    def test_default_num_threads_uses_available_cpus(self, monkeypatch):
        import os
        monkeypatch.delenv("OMP_NUM_THREADS", raising=False)
        monkeypatch.setattr(os, "process_cpu_count", lambda: 7,
                            raising=False)
        assert env.default_num_threads() == 7


class TestMeasurementBackend:
    def test_measurement_records_backend(self, omp_compile):
        from repro.analysis.timing import measure
        fn = omp_compile(
            "def spin(n, threads):\n"
            "    total = 0\n"
            "    with omp('parallel for reduction(+:total) "
            "num_threads(threads)'):\n"
            "        for i in range(n):\n"
            "            total += i\n"
            "    return total\n", "spin")
        measurement = measure(fn, 5000, 2)
        from repro.runtime.gilstate import current_backend
        assert measurement.backend == current_backend().value
        assert measurement.model_projected is not None

    def test_gil_backend_reports_model_as_projected(self, omp_compile,
                                                    monkeypatch):
        fn = omp_compile(
            "def spin2(n, threads):\n"
            "    total = 0\n"
            "    with omp('parallel for reduction(+:total) "
            "num_threads(threads)'):\n"
            "        for i in range(n):\n"
            "            total += i\n"
            "    return total\n", "spin2")
        m = measure_with_forced_backend(fn, Backend.GIL, monkeypatch)
        assert m.projected == m.model_projected

    def test_nogil_backend_reports_wall_as_projected(self, omp_compile,
                                                     monkeypatch):
        fn = omp_compile(
            "def spin3(n, threads):\n"
            "    total = 0\n"
            "    with omp('parallel for reduction(+:total) "
            "num_threads(threads)'):\n"
            "        for i in range(n):\n"
            "            total += i\n"
            "    return total\n", "spin3")
        m = measure_with_forced_backend(fn, Backend.NOGIL, monkeypatch)
        assert m.projected == m.wall
        assert m.backend == "nogil"
        # The model stays available for the validation cross-check.
        assert m.model_projected is not None
        assert m.model_projected <= m.wall * 1.01

    @pytest.mark.nogil
    def test_true_parallel_speedup(self, omp_compile):
        # Only meaningful with real parallelism: measured wall at 4
        # threads must beat 1 thread (auto-skipped on gil backends by
        # tests/conftest.py).
        from repro.analysis.timing import measure
        fn = omp_compile(
            "def spin4(n, threads):\n"
            "    total = 0\n"
            "    with omp('parallel for reduction(+:total) "
            "num_threads(threads)'):\n"
            "        for i in range(n):\n"
            "            total += i * i\n"
            "    return total\n", "spin4")
        one = measure(fn, 400000, 1, repeats=3)
        four = measure(fn, 400000, 4, repeats=3)
        assert four.wall < one.wall * 0.9


def measure_with_forced_backend(fn, backend, monkeypatch):
    """Measure with the bound runtime's backend forced (instance-level,
    so the process-wide cache stays untouched)."""
    from repro.analysis.timing import measure
    from repro.decorator import runtime_for
    runtime = runtime_for(fn.__omp_mode__)
    monkeypatch.setattr(runtime, "backend", backend)
    return measure(fn, 5000, 2)
