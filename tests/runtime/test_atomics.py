"""Unit and concurrency tests for the atomics substrate."""

import threading

import pytest

from repro.atomics import AtomicLong, AtomicRef, atomic_setdefault, cas_attr


class TestAtomicLong:
    def test_initial_value(self):
        assert AtomicLong().load() == 0
        assert AtomicLong(7).load() == 7

    def test_store_and_load(self):
        cell = AtomicLong()
        cell.store(42)
        assert cell.load() == 42

    def test_swap_returns_old(self):
        cell = AtomicLong(1)
        assert cell.swap(2) == 1
        assert cell.load() == 2

    def test_fetch_add_returns_previous(self):
        cell = AtomicLong(10)
        assert cell.fetch_add(5) == 10
        assert cell.load() == 15

    def test_fetch_add_default_delta(self):
        cell = AtomicLong()
        cell.fetch_add()
        assert cell.load() == 1

    def test_fetch_add_negative(self):
        cell = AtomicLong(3)
        assert cell.fetch_add(-3) == 3
        assert cell.load() == 0

    def test_compare_exchange_success(self):
        cell = AtomicLong(5)
        assert cell.compare_exchange(5, 9)
        assert cell.load() == 9

    def test_compare_exchange_failure(self):
        cell = AtomicLong(5)
        assert not cell.compare_exchange(4, 9)
        assert cell.load() == 5

    def test_concurrent_fetch_add_is_linearizable(self):
        cell = AtomicLong()
        per_thread, threads = 2000, 8

        def bump():
            for _ in range(per_thread):
                cell.fetch_add(1)

        workers = [threading.Thread(target=bump) for _ in range(threads)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        assert cell.load() == per_thread * threads

    def test_concurrent_cas_claims_are_unique(self):
        cell = AtomicLong(0)
        winners = []
        lock = threading.Lock()

        def claim(tid):
            if cell.compare_exchange(0, tid):
                with lock:
                    winners.append(tid)

        workers = [threading.Thread(target=claim, args=(i,))
                   for i in range(1, 17)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        assert len(winners) == 1
        assert cell.load() == winners[0]


class TestAtomicRef:
    def test_identity_comparison(self):
        marker_a, marker_b = object(), object()
        cell = AtomicRef(marker_a)
        # Equal-but-not-identical values must not satisfy the CAS.
        assert not AtomicRef([1]).compare_exchange([1], marker_b)
        assert cell.compare_exchange(marker_a, marker_b)
        assert cell.load() is marker_b

    def test_swap(self):
        first, second = object(), object()
        cell = AtomicRef(first)
        assert cell.swap(second) is first
        assert cell.load() is second

    def test_store(self):
        cell = AtomicRef()
        value = object()
        cell.store(value)
        assert cell.load() is value


class TestCasAttr:
    class Node:
        def __init__(self):
            self.next = None

    def test_success_and_failure(self):
        node = self.Node()
        other = self.Node()
        assert cas_attr(node, "next", None, other)
        assert node.next is other
        assert not cas_attr(node, "next", None, self.Node())
        assert node.next is other

    def test_concurrent_single_winner(self):
        node = self.Node()
        wins = AtomicLong()

        def try_link():
            if cas_attr(node, "next", None, object()):
                wins.fetch_add(1)

        workers = [threading.Thread(target=try_link) for _ in range(16)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        assert wins.load() == 1


class TestAtomicSetdefault:
    def test_first_wins(self):
        table = {}
        first = atomic_setdefault(table, "k", "a")
        second = atomic_setdefault(table, "k", "b")
        assert first == "a"
        assert second == "a"

    def test_concurrent_slot_creation_single_winner(self):
        table = {}
        results = []
        lock = threading.Lock()

        def create():
            slot = atomic_setdefault(table, "slot", object())
            with lock:
                results.append(slot)

        workers = [threading.Thread(target=create) for _ in range(16)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        assert all(r is results[0] for r in results)


class TestPaddedAccumulator:
    def test_rows_are_cache_line_aligned(self):
        from repro.atomics import CACHE_LINE_BYTES, PaddedAccumulator
        acc = PaddedAccumulator(3, width=2)
        itemsize = 8
        assert (acc._stride * itemsize) % CACHE_LINE_BYTES == 0
        assert acc._stride >= acc.width

    def test_wide_rows_round_up_to_whole_lines(self):
        from repro.atomics import CACHE_LINE_BYTES, PaddedAccumulator
        per_line = CACHE_LINE_BYTES // 8
        acc = PaddedAccumulator(2, width=per_line + 1)
        assert acc._stride == 2 * per_line

    def test_add_total_reduce_reset(self):
        from repro.atomics import PaddedAccumulator
        acc = PaddedAccumulator(4, width=2)
        for thread in range(4):
            acc.add(thread, thread + 1.0)
            acc.add(thread, 0.5, index=1)
        assert acc.total() == 10.0
        assert acc.reduce() == [10.0, 2.0]
        acc.reset()
        assert acc.reduce() == [0.0, 0.0]

    def test_set_and_get_are_per_thread(self):
        from repro.atomics import PaddedAccumulator
        acc = PaddedAccumulator(2)
        acc.set(0, 7.0)
        acc.set(1, 11.0)
        assert acc.get(0) == 7.0
        assert acc.get(1) == 11.0

    def test_validates_arguments(self):
        import pytest
        from repro.atomics import PaddedAccumulator
        with pytest.raises(ValueError):
            PaddedAccumulator(0)
        with pytest.raises(ValueError):
            PaddedAccumulator(1, width=0)

    def test_concurrent_threads_never_interfere(self):
        from repro.atomics import PaddedAccumulator
        acc = PaddedAccumulator(8)
        iterations = 2000

        def work(thread):
            for _ in range(iterations):
                acc.add(thread, 1.0)

        workers = [threading.Thread(target=work, args=(t,))
                   for t in range(8)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        assert acc.total() == 8 * iterations
