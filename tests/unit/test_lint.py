"""Unit tests for ``repro.lint`` (omplint).

A fixture corpus gives every rule id at least one positive case (the
rule fires, at the right location) and one negative case (the
synchronized / correct variant stays clean), plus coverage of the
finding model, the CLI exit-code contract, and the ``@omp(lint=...)``
decorator policy.
"""

from __future__ import annotations

import json

import pytest

from repro import Mode
from repro.errors import OmpLintError
from repro.lint import (RULES, Severity, lint_source, worst_severity)
from repro.lint.cli import main as lint_main


def rules_of(source: str) -> list[str]:
    return [f.rule for f in lint_source(source)]


# ---------------------------------------------------------------------
# Rule corpus: (case id, source, expected rule ids)
# ---------------------------------------------------------------------

POSITIVE_CASES = [
    ("OMP100-bad-clause", '''
def f(n):
    total = 0
    with omp("parallel for reduction(+)"):
        for i in range(n):
            total += 1
''', ["OMP100"]),
    ("OMP100-for-body-not-loop", '''
def f(n):
    with omp("parallel for"):
        x = 1
''', ["OMP100"]),
    ("OMP101-parallel-for", '''
def f(n):
    total = 0
    with omp("parallel for"):
        for i in range(n):
            total += 1
    return total
''', ["OMP101"]),
    ("OMP101-plain-parallel", '''
def f(n):
    hits = 0
    with omp("parallel"):
        hits = hits + 1
    return hits
''', ["OMP101"]),
    ("OMP102-read-before-init", '''
def f(n):
    x = 1
    with omp("parallel private(x)"):
        y = x + 1
''', ["OMP102"]),
    ("OMP103-firstprivate-never-read", '''
def f(n):
    x = 1
    with omp("parallel firstprivate(x)"):
        x = omp_get_thread_num()
''', ["OMP103"]),
    ("OMP104-lastprivate-never-assigned", '''
def f(n):
    v = 0
    with omp("parallel for lastprivate(v)"):
        for i in range(n):
            pass
    return v
''', ["OMP104"]),
    ("OMP105-for-in-critical", '''
def f(n):
    with omp("parallel"):
        with omp("critical"):
            with omp("for"):
                for i in range(n):
                    pass
''', ["OMP105"]),
    ("OMP105-single-in-parallel-for", '''
def f(n):
    with omp("parallel for"):
        for i in range(n):
            with omp("single"):
                x = 1
''', ["OMP105"]),
    ("OMP106-barrier-in-master", '''
def f(n):
    with omp("parallel"):
        with omp("master"):
            omp("barrier")
''', ["OMP106"]),
    ("OMP107-index-increment", '''
def f(n):
    with omp("parallel for"):
        for i in range(n):
            i += 1
''', ["OMP107"]),
]

NEGATIVE_CASES = [
    ("OMP100-valid-directive", '''
def f(n):
    total = 0
    with omp("parallel for reduction(+:total) schedule(static)"):
        for i in range(n):
            total += 1
    return total
'''),
    ("OMP101-reduction", '''
def f(n):
    total = 0
    with omp("parallel for reduction(+:total)"):
        for i in range(n):
            total += 1
    return total
'''),
    ("OMP101-critical", '''
def f(n):
    total = 0
    with omp("parallel"):
        with omp("critical"):
            total += 1
    return total
'''),
    ("OMP101-lock-pair", '''
def f(n):
    lock = omp_init_lock()
    total = 0
    with omp("parallel"):
        omp_set_lock(lock)
        total += 1
        omp_unset_lock(lock)
    return total
'''),
    ("OMP102-assigned-first", '''
def f(n):
    x = 1
    with omp("parallel private(x)"):
        x = omp_get_thread_num()
        y = x + 1
'''),
    ("OMP103-firstprivate-read", '''
def f(n):
    x = 1
    with omp("parallel firstprivate(x)"):
        y = x + 1
'''),
    ("OMP104-lastprivate-assigned", '''
def f(n):
    v = 0
    with omp("parallel for lastprivate(v)"):
        for i in range(n):
            v = i * 2
    return v
'''),
    ("OMP105-for-in-parallel", '''
def f(n):
    with omp("parallel"):
        with omp("for"):
            for i in range(n):
                pass
'''),
    ("OMP106-barrier-in-parallel", '''
def f(n):
    with omp("parallel"):
        x = omp_get_thread_num()
        omp("barrier")
'''),
    ("OMP107-index-read-only", '''
def f(n):
    with omp("parallel for"):
        for i in range(n):
            j = i + 1
'''),
]


@pytest.mark.parametrize(
    "source,expected",
    [(src, expected) for _, src, expected in POSITIVE_CASES],
    ids=[case_id for case_id, _, _ in POSITIVE_CASES])
def test_rule_fires(source, expected):
    fired = rules_of(source)
    for rule in expected:
        assert rule in fired, f"expected {rule}, got {fired}"


@pytest.mark.parametrize(
    "source", [src for _, src in NEGATIVE_CASES],
    ids=[case_id for case_id, _ in NEGATIVE_CASES])
def test_clean_variant_has_no_findings(source):
    assert rules_of(source) == []


def test_every_rule_id_has_corpus_coverage():
    covered = {rule for _, _, expected in POSITIVE_CASES
               for rule in expected}
    assert covered == set(RULES), "corpus must cover every rule id"


def test_task_plain_store_is_single_writer():
    # The paper's Fig. 4 fibonacci shape: each task instance writes a
    # distinct variable once, synchronized by taskwait — not a race.
    source = '''
def fib(n):
    fib1 = fib2 = 0
    with omp("parallel"):
        with omp("single"):
            with omp("task"):
                fib1 = n - 1
            with omp("task"):
                fib2 = n - 2
            omp("taskwait")
    return fib1 + fib2
'''
    assert rules_of(source) == []


def test_task_augmented_store_still_races():
    source = '''
def f(n):
    acc = 0
    with omp("parallel"):
        with omp("single"):
            for i in range(n):
                with omp("task"):
                    acc += i
'''
    assert "OMP101" in rules_of(source)


def test_finding_anchors_and_payload():
    source = '''
def f(n):
    total = 0
    with omp("parallel for"):
        for i in range(n):
            total += 1
'''
    (finding,) = lint_source(source, filename="racy.py")
    assert finding.rule == "OMP101"
    assert finding.severity is Severity.ERROR
    assert finding.variable == "total"
    assert finding.function == "f"
    assert finding.lineno == 6
    assert finding.location().startswith("racy.py:6:")
    assert "OMP101 error" in str(finding)
    payload = finding.to_dict()
    assert payload["rule"] == "OMP101"
    assert payload["severity"] == "error"
    assert payload["variable"] == "total"


def test_worst_severity():
    source_racy = '''
def f(n):
    total = 0
    with omp("parallel for"):
        for i in range(n):
            total += 1
'''
    source_warn = '''
def f(n):
    v = 0
    with omp("parallel for lastprivate(v)"):
        for i in range(n):
            pass
'''
    assert worst_severity(lint_source(source_racy)) is Severity.ERROR
    assert worst_severity(lint_source(source_warn)) is Severity.WARNING
    assert worst_severity([]) is None


def test_functions_without_directives_are_skipped():
    source = '''
def plain(n):
    total = 0
    for i in range(n):
        total += 1
    return total
'''
    assert lint_source(source) == []


# ---------------------------------------------------------------------
# CLI contract
# ---------------------------------------------------------------------

RACY = '''from repro import *

def count(n):
    total = 0
    with omp("parallel for"):
        for i in range(n):
            total += 1
    return total
'''

CLEAN = '''from repro import *

def count(n):
    total = 0
    with omp("parallel for reduction(+:total)"):
        for i in range(n):
            total += 1
    return total
'''


@pytest.fixture
def corpus_dir(tmp_path):
    (tmp_path / "racy.py").write_text(RACY, encoding="utf-8")
    (tmp_path / "clean.py").write_text(CLEAN, encoding="utf-8")
    return tmp_path


def test_cli_racy_file_exits_nonzero(corpus_dir, capsys):
    code = lint_main([str(corpus_dir / "racy.py")])
    out = capsys.readouterr().out
    assert code == 1
    assert "OMP101" in out
    assert "1 error(s)" in out


def test_cli_clean_file_exits_zero(corpus_dir, capsys):
    code = lint_main([str(corpus_dir / "clean.py")])
    out = capsys.readouterr().out
    assert code == 0
    assert "0 error(s)" in out


def test_cli_directory_recursion_and_json(corpus_dir, capsys):
    code = lint_main(["--format", "json", str(corpus_dir)])
    payload = json.loads(capsys.readouterr().out)
    assert code == 1
    assert payload["checked_files"] == 2
    assert payload["errors"] == 1
    assert payload["by_rule"] == {"OMP101": 1}
    (finding,) = payload["findings"]
    assert finding["rule"] == "OMP101"
    assert finding["filename"].endswith("racy.py")


def test_cli_disable_and_fail_on(corpus_dir, capsys):
    assert lint_main(["--disable", "OMP101",
                      str(corpus_dir / "racy.py")]) == 0
    assert lint_main(["--fail-on", "never",
                      str(corpus_dir / "racy.py")]) == 0
    capsys.readouterr()


def test_cli_usage_errors(corpus_dir, capsys):
    assert lint_main([]) == 2
    assert lint_main(["--disable", "OMP999",
                      str(corpus_dir / "racy.py")]) == 2
    capsys.readouterr()


def test_cli_rules_catalogue(capsys):
    assert lint_main(["--rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in RULES:
        assert rule_id in out


# ---------------------------------------------------------------------
# Decorator policy: @omp(lint="warn" | "strict")
# ---------------------------------------------------------------------

RACY_FUNC = '''
def count(n):
    total = 0
    with omp("parallel for"):
        for i in range(n):
            total += 1
    return total
'''

CLEAN_FUNC = '''
def count(n):
    total = 0
    with omp("parallel for reduction(+:total)"):
        for i in range(n):
            total += 1
    return total
'''


def test_decorator_strict_raises_on_race(omp_compile):
    with pytest.raises(OmpLintError) as excinfo:
        omp_compile(RACY_FUNC, "count", Mode.HYBRID, lint="strict")
    assert "OMP101" in str(excinfo.value)
    assert any(f.rule == "OMP101" for f in excinfo.value.findings)


def test_decorator_warn_still_transforms(omp_compile):
    with pytest.warns(UserWarning, match="OMP101"):
        counted = omp_compile(RACY_FUNC, "count", Mode.HYBRID,
                              lint="warn")
    assert callable(counted)


def test_decorator_strict_passes_clean_code(omp_compile):
    counted = omp_compile(CLEAN_FUNC, "count", Mode.HYBRID,
                          lint="strict")
    assert counted(1000) == 1000


def test_decorator_invalid_policy(omp_compile):
    with pytest.raises(OmpLintError, match="invalid lint option"):
        omp_compile(CLEAN_FUNC, "count", Mode.HYBRID, lint="bogus")
