"""Projection-validation harness: projected vs measured wall time.

The projection model (docs/projection.md) claims that on a
free-threaded interpreter its output converges to the measured wall
time.  This harness turns that claim — the comparison the OMP4Py paper
treats as central — into a machine-checked verdict: it runs the same
smoke kernels under both accounting paths and reports the per-app
relative error between the model's projection and the measured wall.

What is checkable depends on the execution backend
(:mod:`repro.runtime.gilstate`):

* **nogil** (free-threaded interpreter) — the real validation: threads
  overlap, so ``|model − wall| / wall`` must stay within the
  documented bound (:data:`DEFAULT_BOUND`) at every thread count.
  This is what CI's ``nogil-validate`` job gates.
* **gil** — convergence cannot be observed (the model and the wall
  *must* diverge; that divergence is the model's whole point), so the
  harness instead checks the identities that hold regardless of the
  GIL: at one thread the formula degenerates to the wall exactly
  (``Σcpu == maxcpu``), and at any thread count the projection never
  exceeds the measured wall (it only ever subtracts serialized
  compute).  These catch accounting-plumbing regressions — a region
  that stops recording, a double-counted repeat — on every CI leg,
  not just the free-threaded one.

Usage::

    python -m repro.analysis.validate [--apps pi,wordcount]
        [--threads 4] [--profile test] [--repeats 3] [--bound 0.25]
        [--check] [--json PATH] [--summary PATH]

``--check`` exits non-zero when any row exceeds the bound;
``--summary`` writes a GitHub-flavoured markdown table (CI appends it
to ``$GITHUB_STEP_SUMMARY``).
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys

from repro.analysis.timing import measure
from repro.modes import Mode
from repro.runtime.gilstate import Backend, current_backend

#: Documented projected-vs-measured error bound for the smoke kernels
#: (docs/projection.md, "Validated against real free-threaded runs").
#: Generous enough for shared-runner noise at test-profile sizes,
#: tight enough that a broken accounting path (regions unrecorded,
#: CPU times attributed to the wrong team) cannot sneak through.
DEFAULT_BOUND = 0.25

#: Kernels the smoke validation runs: the reduction-bound numerical
#: app and the critical-section-bound non-numerical one — the two
#: synchronization archetypes of the paper's Table I.
SMOKE_APPS = ("pi", "wordcount")


@dataclasses.dataclass
class ValidationRow:
    """One projected-vs-measured comparison."""

    app: str
    threads: int
    backend: str
    kind: str            # "convergence" (nogil) / "identity" /
                         # "model-upper-bound" (gil)
    wall_s: float
    model_projected_s: float
    error: float         # the gated relative error for this row
    bound: float
    passed: bool

    def line(self) -> str:
        verdict = "PASS" if self.passed else "FAIL"
        return (f"{self.app:<12} {self.threads:>3}  {self.kind:<17} "
                f"{self.wall_s:>9.4f} {self.model_projected_s:>9.4f} "
                f"{self.error * 100:>7.1f}%  {verdict}")


def _run_app(spec, mode: Mode, threads: int, profile: str,
             repeats: int):
    variant = spec.variant(mode)

    def make_args():
        inputs = spec.inputs(profile)
        inputs["threads"] = threads
        return (), inputs

    return measure(variant, repeats=repeats, make_args=make_args)


def validate_app(spec, threads: int, profile: str = "test",
                 repeats: int = 3, bound: float = DEFAULT_BOUND,
                 mode: Mode = Mode.PURE,
                 backend: Backend | None = None) -> list[ValidationRow]:
    """Validation rows for one app (backend decides which checks run)."""
    backend = backend if backend is not None else current_backend()
    rows: list[ValidationRow] = []
    if backend.measures_parallelism:
        # The real thing: the model must reproduce the measured wall.
        for count in sorted({1, threads}):
            m = _run_app(spec, mode, count, profile, repeats)
            model = m.model_projected if m.model_projected is not None \
                else m.projected
            error = abs(model - m.wall) / m.wall if m.wall else 0.0
            rows.append(ValidationRow(
                app=spec.name, threads=count, backend=backend.value,
                kind="convergence", wall_s=m.wall,
                model_projected_s=model, error=error, bound=bound,
                passed=error <= bound))
        return rows
    # GIL backend: check the backend-independent identities.
    one = _run_app(spec, mode, 1, profile, repeats)
    one_model = one.model_projected if one.model_projected is not None \
        else one.projected
    one_error = abs(one_model - one.wall) / one.wall if one.wall else 0.0
    rows.append(ValidationRow(
        app=spec.name, threads=1, backend=backend.value,
        kind="identity", wall_s=one.wall, model_projected_s=one_model,
        error=one_error, bound=bound, passed=one_error <= bound))
    if threads > 1:
        many = _run_app(spec, mode, threads, profile, repeats)
        model = many.model_projected if many.model_projected is not None \
            else many.projected
        # Only an excess over the wall is an error: the model may (and
        # should) project far below it under the GIL.
        excess = max(0.0, model - many.wall) / many.wall \
            if many.wall else 0.0
        rows.append(ValidationRow(
            app=spec.name, threads=threads, backend=backend.value,
            kind="model-upper-bound", wall_s=many.wall,
            model_projected_s=model, error=excess, bound=bound,
            passed=excess <= bound))
    return rows


def run_validation(apps=SMOKE_APPS, threads: int = 4,
                   profile: str = "test", repeats: int = 3,
                   bound: float = DEFAULT_BOUND, mode: Mode = Mode.PURE,
                   backend: Backend | None = None) -> list[ValidationRow]:
    """Validate every app; returns all rows (callers check ``passed``)."""
    from repro.apps import get_app
    rows: list[ValidationRow] = []
    for name in apps:
        rows.extend(validate_app(get_app(name), threads, profile,
                                 repeats, bound, mode, backend))
    return rows


def rows_to_json(rows: list[ValidationRow]) -> dict:
    backend = rows[0].backend if rows else current_backend().value
    return {
        "schema": "omp4py-projection-validation/1",
        "backend": backend,
        "bound": rows[0].bound if rows else DEFAULT_BOUND,
        "max_error": max((r.error for r in rows), default=0.0),
        "passed": all(r.passed for r in rows),
        "rows": [dataclasses.asdict(r) for r in rows],
    }


def rows_to_markdown(rows: list[ValidationRow]) -> str:
    """GitHub-flavoured markdown table for the CI job summary."""
    backend = rows[0].backend if rows else current_backend().value
    bound = rows[0].bound if rows else DEFAULT_BOUND
    lines = [
        f"### Projection validation (backend={backend}, "
        f"bound {bound * 100:.0f}%)",
        "",
        "| app | threads | check | wall [s] | model [s] | error | "
        "verdict |",
        "|---|---|---|---|---|---|---|",
    ]
    for r in rows:
        verdict = "✅ pass" if r.passed else "❌ FAIL"
        lines.append(
            f"| {r.app} | {r.threads} | {r.kind} | {r.wall_s:.4f} | "
            f"{r.model_projected_s:.4f} | {r.error * 100:.1f}% | "
            f"{verdict} |")
    if backend != "nogil":
        lines += ["", "_GIL backend: convergence is unobservable; only "
                      "the backend-independent identities were "
                      "checked._"]
    return "\n".join(lines) + "\n"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.validate",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--apps", default=",".join(SMOKE_APPS),
                        help="comma-separated app subset")
    parser.add_argument("--threads", type=int, default=4)
    parser.add_argument("--profile", default="test",
                        choices=("test", "default", "paper"))
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--bound", type=float, default=DEFAULT_BOUND,
                        help="relative-error gate (default "
                             f"{DEFAULT_BOUND})")
    parser.add_argument("--mode", default="pure",
                        help="execution mode to validate under")
    parser.add_argument("--check", action="store_true",
                        help="exit 1 when any row exceeds the bound")
    parser.add_argument("--json", default=None, metavar="PATH")
    parser.add_argument("--summary", default=None, metavar="PATH",
                        help="write a markdown table (CI step summary)")
    args = parser.parse_args(argv)

    backend = current_backend()
    rows = run_validation(
        apps=[a for a in args.apps.split(",") if a],
        threads=args.threads, profile=args.profile,
        repeats=args.repeats, bound=args.bound,
        mode=Mode.parse(args.mode))
    print(f"PROJECTION VALIDATION (backend={backend.value}, "
          f"profile={args.profile}, bound={args.bound * 100:.0f}%)")
    print(f"{'app':<12} {'thr':>3}  {'check':<17} {'wall[s]':>9} "
          f"{'model[s]':>9} {'error':>8}  verdict")
    for row in rows:
        print(row.line())
    failed = [r for r in rows if not r.passed]
    worst = max((r.error for r in rows), default=0.0)
    print(f"\nmax error {worst * 100:.1f}% over {len(rows)} checks; "
          f"{len(rows) - len(failed)}/{len(rows)} within the "
          f"{args.bound * 100:.0f}% bound")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(rows_to_json(rows), handle, indent=2)
        print(f"(json written to {args.json})")
    if args.summary:
        with open(args.summary, "w", encoding="utf-8") as handle:
            handle.write(rows_to_markdown(rows))
        print(f"(summary written to {args.summary})")
    if args.check and failed:
        print(f"[validate] FAIL: {len(failed)} check(s) exceeded the "
              f"bound", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
