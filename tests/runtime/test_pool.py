"""Tests of the persistent hot-team worker pool (runtime/pool.py).

Engine-level tests drive the singleton runtimes' pools through
``parallel_run``; lifecycle tests (trim, shutdown, tool callbacks) use
a standalone :class:`WorkerPool` with a tiny idle timeout so they never
perturb the shared pool other suites rely on.
"""

import threading
import time

import pytest

from repro.cruntime import cruntime
from repro.ompt.hooks import CALLBACK_NAMES, ToolHooks
from repro.runtime import pure_runtime
from repro.runtime.pool import WorkerPool


@pytest.fixture(params=["pure", "cruntime"])
def rt(request):
    return pure_runtime if request.param == "pure" else cruntime


def _wait_until(predicate, timeout=8.0, step=0.01):
    deadline = time.perf_counter() + timeout
    while time.perf_counter() < deadline:
        if predicate():
            return True
        time.sleep(step)
    return predicate()


class RecordingTool(ToolHooks):
    def __init__(self):
        self.calls = []


def _recorder(name):
    def method(self, *args):
        self.calls.append((name, args))
    return method


for _name in CALLBACK_NAMES:
    setattr(RecordingTool, _name, _recorder(_name))


# -- engine integration -----------------------------------------------------


class TestHotTeamsThroughEngine:
    def test_worker_identity_stable_across_regions(self, rt):
        """Back-to-back same-size regions reuse the same native
        threads: after a warm-up region, no new workers are spawned."""
        idents_per_region = []

        def body():
            idents_per_region[-1].add(threading.get_ident())

        idents_per_region.append(set())
        rt.parallel_run(body, num_threads=4)  # warm the pool
        spawned_before = rt.pool().spawned_total
        reused_before = rt.pool().reused_total
        for _ in range(5):
            idents_per_region.append(set())
            rt.parallel_run(body, num_threads=4)
        assert rt.pool().spawned_total == spawned_before
        assert rt.pool().reused_total == reused_before + 15
        warm = idents_per_region[0]
        assert all(region == warm for region in idents_per_region[1:])

    def test_growth_under_nested_parallelism(self, rt):
        """Nested regions need helpers while the outer helpers are
        busy: the pool must grow instead of deadlocking, and every
        implicit task must run."""
        ran = []
        ran_lock = threading.Lock()
        prior = rt.get_nested()
        rt.set_nested(True)
        try:
            def inner():
                with ran_lock:
                    ran.append(rt.get_thread_num())

            def outer():
                rt.parallel_run(inner, num_threads=2)

            rt.parallel_run(outer, num_threads=2)
        finally:
            rt.set_nested(prior)
        assert sorted(ran) == [0, 0, 1, 1]

    def test_hot_teams_off_spawns_per_region(self, rt):
        """The OMP4PY_HOT_TEAMS=0 escape hatch: regions complete
        without touching the pool."""
        spawned_before = rt.pool().spawned_total
        reused_before = rt.pool().reused_total
        seen = set()
        seen_lock = threading.Lock()

        def body():
            with seen_lock:
                seen.add(rt.get_thread_num())

        prior = rt.hot_teams
        rt.hot_teams = False
        try:
            rt.parallel_run(body, num_threads=3)
        finally:
            rt.hot_teams = prior
        assert seen == {0, 1, 2}
        assert rt.pool().spawned_total == spawned_before
        assert rt.pool().reused_total == reused_before

    def test_region_errors_propagate_through_pool(self, rt):
        from repro.errors import OmpRuntimeError

        def body():
            if rt.get_thread_num() == 1:
                raise ValueError("worker boom")

        with pytest.raises(OmpRuntimeError):
            rt.parallel_run(body, num_threads=3)
        # The pool must still be healthy after a failed region.
        rt.parallel_run(lambda: None, num_threads=3)

    def test_concurrent_masters_share_one_pool(self, rt):
        """parallel_run from several external threads at once: the pool
        serves all of them without cross-wiring members."""
        results = {}
        results_lock = threading.Lock()

        def run_region(tag):
            local = []

            def body():
                local.append(rt.get_thread_num())

            rt.parallel_run(body, num_threads=2)
            with results_lock:
                results[tag] = sorted(local)

        masters = [threading.Thread(target=run_region, args=(tag,))
                   for tag in range(4)]
        for master in masters:
            master.start()
        for master in masters:
            master.join()
        assert results == {tag: [0, 1] for tag in range(4)}


# -- standalone pool lifecycle ----------------------------------------------


class TestPoolLifecycle:
    def _run_region(self, pool, count):
        ran = []
        ran_lock = threading.Lock()

        def member(index):
            with ran_lock:
                ran.append(index)

        ticket = pool.run_helpers(member, count)
        pool.wait(ticket)
        return sorted(ran)

    def test_zero_helpers_is_a_noop(self, rt):
        pool = WorkerPool(rt, idle_timeout=1.0)
        assert pool.run_helpers(lambda index: None, 0) is None
        pool.wait(None)
        assert pool.size() == 0

    def test_reuse_then_idle_trim(self, rt):
        pool = WorkerPool(rt, idle_timeout=0.08)
        assert self._run_region(pool, 2) == [1, 2]
        assert pool.spawned_total == 2
        assert self._run_region(pool, 2) == [1, 2]
        assert pool.spawned_total == 2
        assert pool.reused_total == 2
        assert _wait_until(lambda: pool.size() == 0)
        assert pool.trimmed_total == 2
        # A trimmed pool serves the next region by spawning afresh.
        assert self._run_region(pool, 1) == [1]
        assert pool.spawned_total == 3
        pool.shutdown()

    def test_shutdown_retires_parked_workers(self, rt):
        pool = WorkerPool(rt, idle_timeout=30.0)
        self._run_region(pool, 3)
        assert pool.idle_count() == 3
        pool.shutdown()
        assert pool.size() == 0
        assert pool.idle_count() == 0

    def test_wait_policy_active_completes(self, rt):
        pool = WorkerPool(rt, idle_timeout=1.0, wait_policy="active")
        assert self._run_region(pool, 2) == [1, 2]
        assert self._run_region(pool, 2) == [1, 2]
        assert pool.reused_total == 2
        pool.shutdown()

    def test_member_exception_does_not_kill_worker(self, rt):
        pool = WorkerPool(rt, idle_timeout=1.0)

        def exploding(index):
            raise RuntimeError("member blew up")

        ticket = pool.run_helpers(exploding, 2)
        pool.wait(ticket)
        assert pool.idle_count() == 2  # workers survived and re-parked
        assert self._run_region(pool, 2) == [1, 2]
        pool.shutdown()


# -- OMPT thread lifecycle callbacks ----------------------------------------


class TestPoolToolCallbacks:
    def _calls(self, tool, name):
        return [args for called, args in tool.calls if called == name]

    def test_pool_worker_lifecycle_events(self, rt):
        tool = RecordingTool()
        pool = WorkerPool(rt, idle_timeout=30.0)
        rt.attach_tool(tool)
        try:
            ticket = pool.run_helpers(lambda index: None, 2)
            pool.wait(ticket)
            # thread_begin and the park's idle-"begin" both
            # happen-before the region ticket completes.
            begins = self._calls(tool, "thread_begin")
            assert [args[0] for args in begins] == ["pool-worker"] * 2
            idles = self._calls(tool, "thread_idle")
            assert [args[1] for args in idles] == ["begin", "begin"]

            ticket = pool.run_helpers(lambda index: None, 2)
            pool.wait(ticket)
            endpoints = [args[1]
                         for args in self._calls(tool, "thread_idle")]
            assert endpoints.count("end") == 2  # the two reuses
            assert endpoints.count("begin") == 4

            pool.shutdown()
            ends = self._calls(tool, "thread_end")
            assert [args[0] for args in ends] == ["pool-worker"] * 2
        finally:
            rt.detach_tool(tool)

    def test_cold_path_fires_region_worker_events(self, rt):
        tool = RecordingTool()
        rt.attach_tool(tool)
        prior = rt.hot_teams
        rt.hot_teams = False
        try:
            rt.parallel_run(lambda: None, num_threads=3)
        finally:
            rt.hot_teams = prior
            rt.detach_tool(tool)
        begins = self._calls(tool, "thread_begin")
        ends = self._calls(tool, "thread_end")
        assert [args[0] for args in begins] == ["region-worker"] * 2
        assert [args[0] for args in ends] == ["region-worker"] * 2

    def test_pool_counters_in_metrics_registry(self, rt):
        from repro.ompt.metrics import MetricsTool

        tool = MetricsTool()
        pool = WorkerPool(rt, idle_timeout=30.0)
        rt.attach_tool(tool)
        try:
            for _ in range(3):
                ticket = pool.run_helpers(lambda index: None, 2)
                pool.wait(ticket)
            pool.shutdown()
        finally:
            rt.detach_tool(tool)
        data = tool.registry.as_dict()

        def total(metric):
            family = data.get(metric)
            if family is None:
                return 0
            return sum(s["value"] for s in family["samples"])

        assert total("omp_pool_spawns_total") == 2
        assert total("omp_pool_reuse_total") == 4
        assert total("omp_pool_trims_total") == 2
