"""Request/response model and the result-digest verification scheme.

The HTTP front door speaks JSON; the dispatcher speaks small dict
messages over each worker's control pipe.  Arrays never ride either —
they live in shared memory (:mod:`repro.serve.shm`) and only
:class:`~repro.serve.shm.ArrayHandle` descriptors travel.

Every request's result is verified at serving level: at input
registration the server digests the app's sequential reference, the
worker digests what the kernel produced, and the two must agree within
a float-reduction tolerance.  A digest is a tiny structural summary —
element count, value sum, absolute sum, and a hash of any non-numeric
atoms — cheap enough to compute per request yet strong enough to catch
a wrong result, a misattached segment, or a partial batch.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import threading
import time

import numpy as np

from repro.errors import OmpError

#: Schema tag on ``/state`` payloads and the job wire format.
STATE_SCHEMA = "omp4py-serve-state/1"

#: Relative/absolute tolerance for digest sums: parallel reductions
#: reassociate float adds, so sums differ in the last few digits.
DIGEST_RTOL = 1e-3
DIGEST_ATOL = 1e-2

_REQUEST_IDS = itertools.count(1)


def _accumulate(value, sums: list, meta: "hashlib._Hash") -> None:
    if value is None or isinstance(value, bool):
        meta.update(repr(value).encode())
        return
    if isinstance(value, (int, float, complex, np.number)):
        value = complex(value)
        sums[0] += 1
        sums[1] += value.real + value.imag
        sums[2] += abs(value.real) + abs(value.imag)
        return
    if isinstance(value, np.ndarray):
        if value.dtype.kind in "fiu":
            sums[0] += value.size
            sums[1] += float(value.sum())
            sums[2] += float(np.abs(value).sum())
        elif value.dtype.kind == "c":
            sums[0] += value.size
            sums[1] += float(value.real.sum() + value.imag.sum())
            sums[2] += float(np.abs(value.real).sum()
                             + np.abs(value.imag).sum())
        else:
            meta.update(repr(value.tolist()).encode())
        return
    if isinstance(value, str):
        meta.update(value.encode())
        return
    if isinstance(value, dict):
        for key in sorted(value, key=str):
            meta.update(str(key).encode())
            _accumulate(value[key], sums, meta)
        return
    if isinstance(value, (list, tuple)):
        for item in value:
            _accumulate(item, sums, meta)
        return
    meta.update(repr(value).encode())


def result_digest(result) -> dict:
    """Structural summary of one kernel result (see module docstring)."""
    sums = [0, 0.0, 0.0]
    meta = hashlib.sha1()
    _accumulate(result, sums, meta)
    return {"n": int(sums[0]),
            "sum": float(sums[1]),
            "abs": float(sums[2]),
            "meta": meta.hexdigest()[:12]}


def digests_match(expected: dict, actual: dict,
                  rtol: float = DIGEST_RTOL,
                  atol: float = DIGEST_ATOL) -> bool:
    if expected is None or actual is None:
        return False
    if expected.get("n") != actual.get("n"):
        return False
    if expected.get("meta") != actual.get("meta"):
        return False
    for key in ("sum", "abs"):
        a, b = expected.get(key, 0.0), actual.get(key, 0.0)
        if not np.isclose(a, b, rtol=rtol, atol=atol):
            return False
    return True


def overrides_key(overrides: dict) -> tuple:
    """Hashable cache key for a request's input overrides."""
    return tuple(sorted((str(k), repr(v))
                        for k, v in (overrides or {}).items()))


@dataclasses.dataclass
class ServeRequest:
    """One admitted request, from front door to response.

    ``group_key`` is what the batcher coalesces on: requests sharing
    app, mode, profile, thread count, overrides, and tenant run
    against the same input set and can share one job dispatch.
    """

    app: str
    tenant: str
    mode: str = "pure"
    profile: str = "test"
    threads: int = 1
    nodes: int = 1
    overrides: dict = dataclasses.field(default_factory=dict)
    return_values: bool = False
    id: int = dataclasses.field(
        default_factory=lambda: next(_REQUEST_IDS))
    created: float = dataclasses.field(default_factory=time.monotonic)
    attempts: int = 0
    throttled: bool = False
    done: threading.Event = dataclasses.field(
        default_factory=threading.Event)
    response: dict | None = None

    @property
    def group_key(self) -> tuple:
        return (self.app, self.mode, self.profile, self.threads,
                self.nodes, overrides_key(self.overrides), self.tenant)

    @property
    def input_key(self) -> tuple:
        return (self.app, self.profile, overrides_key(self.overrides))

    def complete(self, response: dict) -> None:
        self.response = response
        self.done.set()


def parse_request(doc: dict, *, known_apps, default_tenant: str,
                  max_threads: int) -> ServeRequest:
    """Validate one front-door JSON body into a :class:`ServeRequest`.

    Raises :class:`~repro.errors.OmpError` with a client-facing
    message on anything malformed (the server maps it to a 400).
    """
    if not isinstance(doc, dict):
        raise OmpError("request body must be a JSON object")
    app = doc.get("app")
    if not isinstance(app, str) or app not in known_apps:
        raise OmpError(
            f"unknown app {app!r}; available: {', '.join(known_apps)}")
    threads = doc.get("threads", 1)
    if not isinstance(threads, int) or threads < 1:
        raise OmpError("threads must be a positive integer")
    if threads > max_threads:
        raise OmpError(f"threads={threads} exceeds the server cap "
                       f"{max_threads}")
    nodes = doc.get("nodes", 1)
    if not isinstance(nodes, int) or nodes < 1:
        raise OmpError("nodes must be a positive integer")
    mode = doc.get("mode", "pure")
    if mode not in ("pure", "hybrid"):
        raise OmpError(f"mode must be 'pure' or 'hybrid', got {mode!r}")
    profile = doc.get("profile", "test")
    if not isinstance(profile, str):
        raise OmpError("profile must be a string")
    overrides = doc.get("overrides", {})
    if not isinstance(overrides, dict):
        raise OmpError("overrides must be an object")
    for key, value in overrides.items():
        if not isinstance(value, (int, float, str, bool)):
            raise OmpError(f"override {key!r} must be a scalar")
    tenant = doc.get("tenant", default_tenant)
    if not isinstance(tenant, str) or not tenant:
        raise OmpError("tenant must be a non-empty string")
    return ServeRequest(app=app, tenant=tenant, mode=mode,
                        profile=profile, threads=threads, nodes=nodes,
                        overrides=overrides,
                        return_values=bool(doc.get("return_values")))
