"""Tests of the hybrid MPI/OpenMP Jacobi solver (Fig. 8's app)."""

import numpy as np
import pytest

from repro.apps import jacobi_mpi
from repro.modes import Mode


class TestHybridSolver:
    @pytest.mark.parametrize("nodes", [1, 2, 3, 4])
    def test_solution_independent_of_node_count(self, nodes):
        x = jacobi_mpi.solve(nodes=nodes, threads=2, n=48,
                             iterations=300, mode=Mode.HYBRID)
        assert jacobi_mpi.verify(x, 48)

    def test_all_modes(self, any_mode):
        x = jacobi_mpi.solve(nodes=2, threads=2, n=48, iterations=300,
                             mode=any_mode)
        assert jacobi_mpi.verify(x, 48)

    def test_uneven_row_distribution(self):
        # 50 rows over 3 ranks: blocks of 17/17/16.
        x = jacobi_mpi.solve(nodes=3, threads=2, n=50, iterations=300)
        assert jacobi_mpi.verify(x, 50)

    def test_matches_numpy_solution(self):
        x = jacobi_mpi.solve(nodes=2, threads=1, n=32, iterations=500,
                             tol=1e-10)
        expected = jacobi_mpi.reference(32)
        assert np.allclose(np.asarray(x), expected, atol=1e-6)

    def test_block_bounds_cover_all_rows(self):
        for n in (7, 48, 50, 100):
            for size in (1, 2, 3, 4, 7):
                covered = []
                for rank in range(size):
                    offset, rows = jacobi_mpi._block_bounds(n, size, rank)
                    covered.extend(range(offset, offset + rows))
                assert covered == list(range(n))

    def test_ranks_are_independent_openmp_initial_threads(self):
        """Each rank forks its own team (paper Section III-C)."""
        from repro.cruntime import cruntime
        cruntime.stats.reset()
        jacobi_mpi.solve(nodes=2, threads=2, n=32, iterations=5,
                         mode=Mode.HYBRID)
        records = cruntime.stats.snapshot()
        # 2 ranks x 5 iterations = 10 top-level regions of size 2.
        assert len(records) == 10
        assert all(record.size == 2 for record in records)
