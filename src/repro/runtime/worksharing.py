"""Worksharing constructs: loop scheduling, sections, and single.

The generated code drives loops through three functions, following the
paper's Fig. 3: ``for_bounds`` captures the range triplets (all of them,
when ``collapse`` merges nested loops), ``for_init`` prepares the
schedule and registers the shared slot when one is needed, and
``for_next`` hands out chunks by mutating positions 0 and 1 of the
bounds array.  ``__omp_bounds`` is private to each thread; only the
chunk counter inside the shared slot is team-visible.

Static scheduling is computed locally with no shared state (the paper's
stated performance advantage); dynamic uses ``fetch_add`` on the shared
counter; guided uses a ``compare_exchange`` retry loop so the cruntime's
atomic counter runs it lock-free.
"""

from __future__ import annotations

import threading

from repro.errors import OmpRuntimeError
from repro.runtime.team import BACKOFF_MIN, next_backoff


def trip_count(start: int, stop: int, step: int) -> int:
    """Number of iterations of ``range(start, stop, step)``."""
    if step == 0:
        raise OmpRuntimeError("loop step must not be zero")
    if step > 0:
        span = stop - start
        return (span + step - 1) // step if span > 0 else 0
    span = start - stop
    return (span - step - 1) // (-step) if span > 0 else 0


class LoopSlot:
    """Shared state of one worksharing-loop instance."""

    __slots__ = ("counter", "ordered_next", "ordered_cond")

    def __init__(self, lowlevel):
        self.counter = lowlevel.make_counter(0)
        self.ordered_next = 0
        self.ordered_cond = threading.Condition()


class LoopInfo:
    """Per-thread state of a worksharing loop (slot 2 of the bounds)."""

    __slots__ = ("triplets", "trips", "total", "kind", "chunk", "ordered",
                 "nowait", "slot", "team", "thread_num", "static_index",
                 "is_last", "done", "inner_trips")

    def __init__(self, triplets):
        self.triplets = triplets
        self.trips = [trip_count(*t) for t in triplets]
        self.total = 1
        for trips in self.trips:
            self.total *= trips
        #: Product of the trip counts of loops 1..n-1; used by the
        #: generated divmod index-recovery code for ``collapse``.
        self.inner_trips = self.total // self.trips[0] if self.trips and \
            self.trips[0] else 0
        self.kind = "static"
        self.chunk = None
        self.ordered = False
        self.nowait = False
        self.slot = None
        self.team = None
        self.thread_num = 0
        self.static_index = 0
        self.is_last = False
        self.done = False

    @property
    def collapsed(self) -> bool:
        return len(self.triplets) > 1


def make_bounds(triplet_values) -> list:
    """``for_bounds``: build the bounds array from flat triplet values."""
    values = list(triplet_values)
    if len(values) % 3 != 0 or not values:
        raise OmpRuntimeError("for_bounds expects start/stop/step triplets")
    triplets = [tuple(values[i:i + 3]) for i in range(0, len(values), 3)]
    return [0, 0, LoopInfo(triplets)]


def init_loop(runtime, bounds, kind, chunk, ordered, nowait) -> None:
    """``for_init``: bind the schedule and create shared state."""
    info: LoopInfo = bounds[2]
    frame = runtime.current_frame()
    team = frame.team
    info.team = team
    info.thread_num = frame.thread_num

    if kind == "runtime":
        kind, icv_chunk = runtime.get_schedule()
        if chunk is None:
            chunk = icv_chunk
    if kind == "auto":
        kind = "static"
    if chunk is not None and chunk <= 0:
        raise OmpRuntimeError("schedule chunk size must be positive")
    info.kind = kind
    info.chunk = chunk
    info.ordered = ordered
    info.nowait = nowait

    needs_slot = kind in ("dynamic", "guided") or ordered
    if needs_slot:
        key = ("loop", frame.ws_counter)
        info.slot = team.get_slot(key, lambda: LoopSlot(runtime.lowlevel))
    frame.ws_counter += 1


def next_chunk(bounds) -> bool:
    """``for_next``: hand the thread its next chunk, if any."""
    info: LoopInfo = bounds[2]
    if info.done:
        return False
    if info.kind == "static":
        chunk = _next_static(info)
    elif info.kind == "dynamic":
        chunk = _next_dynamic(info)
    elif info.kind == "guided":
        chunk = _next_guided(info)
    else:  # pragma: no cover - for_init normalised the kind already
        raise OmpRuntimeError(f"unknown schedule kind {info.kind!r}")
    if chunk is None:
        info.done = True
        return False
    low, high = chunk
    if high >= info.total:
        info.is_last = True
    if info.collapsed:
        bounds[0] = low
        bounds[1] = high
    else:
        start, _stop, step = info.triplets[0]
        bounds[0] = start + low * step
        bounds[1] = start + high * step
    return True


def _next_static(info: LoopInfo):
    size = info.team.size
    rank = info.thread_num
    if info.chunk is None:
        # One balanced block per thread.
        if info.static_index > 0:
            return None
        info.static_index = 1
        base, extra = divmod(info.total, size)
        low = rank * base + min(rank, extra)
        high = low + base + (1 if rank < extra else 0)
        return (low, high) if high > low else None
    # Round-robin chunks: thread t owns chunks t, t+T, t+2T, ...
    chunk = info.chunk
    index = rank + info.static_index * size
    info.static_index += 1
    low = index * chunk
    if low >= info.total:
        return None
    return low, min(low + chunk, info.total)


def _next_dynamic(info: LoopInfo):
    chunk = info.chunk or 1
    low = info.slot.counter.fetch_add(chunk)
    if low >= info.total:
        return None
    return low, min(low + chunk, info.total)


def _next_guided(info: LoopInfo):
    counter = info.slot.counter
    minimum = info.chunk or 1
    nthreads = info.team.size
    while True:
        low = counter.load()
        remaining = info.total - low
        if remaining <= 0:
            return None
        # Guided decay: remaining/(2T) rounds to zero once the tail
        # drops below twice the team size; a zero-sized claim would
        # spin the CAS retry loop forever without making progress, so
        # the chunk is clamped to the user chunk floor and never below
        # one iteration.
        size = max(1, minimum, remaining // (2 * nthreads))
        size = min(size, remaining)
        # CAS retry loop: lock-free on the cruntime's atomic counter.
        if counter.compare_exchange(low, low + size):
            return low, low + size


def loop_is_last(bounds) -> bool:
    """``for_last``: did this thread execute the sequentially last
    iteration (for ``lastprivate`` write-back)?"""
    return bounds[2].is_last


def ordered_start(bounds, linear_index: int) -> None:
    """Block until it is this iteration's turn in the ordered region."""
    info: LoopInfo = bounds[2]
    slot: LoopSlot = info.slot
    if slot is None:
        raise OmpRuntimeError(
            "ordered region requires a loop with the ordered clause")
    team = info.team
    diag = team.runtime.diag if team is not None else None
    record = None
    with slot.ordered_cond:
        backoff = BACKOFF_MIN
        try:
            while slot.ordered_next != linear_index:
                if team is not None and team.broken:
                    return  # a peer died; the region is being torn down
                if diag is not None and record is None:
                    record = diag.block_enter(
                        "ordered", id(slot), team=team,
                        thread_num=info.thread_num, detail=linear_index)
                # ordered_end notifies the condition; the timeout is the
                # bounded-backoff breakage check only (record_error
                # cannot reach per-slot condition variables).
                if record is not None:
                    record.sleeping = True
                slot.ordered_cond.wait(timeout=backoff)
                if record is not None:
                    record.sleeping = False
                backoff = next_backoff(backoff)
        finally:
            if record is not None:
                diag.block_exit()
    if diag is not None:
        diag.resource_acquired(("ordered", id(slot)))


def ordered_end(bounds, linear_index: int) -> None:
    info: LoopInfo = bounds[2]
    slot: LoopSlot = info.slot
    diag = (info.team.runtime.diag if info.team is not None else None)
    if diag is not None:
        diag.resource_released(("ordered", id(slot)))
    with slot.ordered_cond:
        slot.ordered_next = linear_index + 1
        slot.ordered_cond.notify_all()


def linear_index(bounds, value) -> int:
    """Map an ordered-construct index to its 0-based position in the
    loop's (possibly collapsed) iteration space.

    Three forms, by loop shape and argument type:

    * single loop, integer ``value`` — the loop-variable value, mapped
      through the triplet;
    * collapsed loop, integer ``value`` — the linearized iteration
      number the generated driver iterates directly (the transformer
      recovers the per-level variables from it with divmod), which *is*
      the position: identity;
    * collapsed loop, tuple ``value`` — per-level loop-variable values,
      delegated to :func:`collapsed_index` (the hand-driven runtime-API
      form).

    Mapping a collapsed value through ``triplets[0]`` — what this
    function did before it was collapse-aware — ordered iterations by a
    number computed from the wrong triplet (negative or colliding
    whenever the outer loop does not start at 0 with step 1).
    """
    info: LoopInfo = bounds[2]
    if info.collapsed:
        if isinstance(value, tuple):
            return collapsed_index(bounds, value)
        return value
    start, _stop, step = info.triplets[0]
    return (value - start) // step


def collapsed_index(bounds, values) -> int:
    """Linear iteration number of one point of a collapsed space.

    ``values`` holds the loop-variable values, outermost first.  Each
    level contributes its 0-based iteration count times the product of
    the trip counts of the levels below it — the inverse of the
    generated divmod recovery (``LoopInfo.inner_trips`` is that product
    for level 0).
    """
    info: LoopInfo = bounds[2]
    if len(values) != len(info.triplets):
        raise OmpRuntimeError(
            f"collapsed ordered index needs {len(info.triplets)} loop "
            f"values, got {len(values)}")
    linear = 0
    weight = info.total
    for (start, _stop, step), trips, value in zip(
            info.triplets, info.trips, values):
        if trips == 0:
            return 0  # empty iteration space; the loop body never runs
        weight //= trips
        linear += ((value - start) // step) * weight
    return linear


class SectionsState:
    """Per-thread view of a sections (or single) instance."""

    __slots__ = ("slot", "count", "selected", "executed_last", "team")

    def __init__(self, slot, count: int, team=None):
        self.slot = slot
        self.count = count
        self.selected = False
        self.executed_last = False
        self.team = team


class SharedSlot:
    """Shared counter + copyprivate broadcast cell for sections/single."""

    __slots__ = ("counter", "payload", "payload_event")

    def __init__(self, lowlevel):
        self.counter = lowlevel.make_counter(0)
        self.payload = None
        self.payload_event = lowlevel.make_event()


def sections_begin(runtime, count: int) -> SectionsState:
    frame = runtime.current_frame()
    key = ("sections", frame.ws_counter)
    frame.ws_counter += 1
    slot = frame.team.get_slot(key, lambda: SharedSlot(runtime.lowlevel))
    return SectionsState(slot, count, team=frame.team)


def sections_next(state: SectionsState) -> int:
    """Claim the next unexecuted section id, or -1 when exhausted."""
    section = state.slot.counter.fetch_add(1)
    if section >= state.count:
        return -1
    if section == state.count - 1:
        state.executed_last = True
    team = state.team
    if team is not None:
        tool = team.runtime.tool
        if tool is not None:
            tool.work(team.runtime.get_thread_num(), "sections",
                      section, section + 1)
    return section


def single_begin(runtime) -> SectionsState:
    state = sections_begin(runtime, 1)
    state.selected = state.slot.counter.fetch_add(1) == 0
    if state.selected:
        tool = runtime.tool
        if tool is not None:
            tool.work(runtime.get_thread_num(), "single", 0, 1)
    return state


def copyprivate_set(state: SectionsState, payload) -> None:
    state.slot.payload = payload
    state.slot.payload_event.set()


def copyprivate_get(state: SectionsState):
    team = state.team
    diag = team.runtime.diag if team is not None else None
    record = None
    if diag is not None and not state.slot.payload_event.is_set():
        record = diag.block_enter("copyprivate", id(state.slot),
                                  team=team)
        record.sleeping = True
    try:
        backoff = BACKOFF_MIN
        # copyprivate_set sets the event; the timeout is the
        # bounded-backoff breakage check only (the publisher may have
        # died without setting).
        while not state.slot.payload_event.wait(timeout=backoff):
            if team is not None and team.broken:
                return None  # the publishing thread died
            backoff = next_backoff(backoff)
        return state.slot.payload
    finally:
        if record is not None:
            diag.block_exit()
