"""Per-node clustering coefficient over a NetworkX graph (paper IV-B).

Paper configuration: 300k-node graph with ~100 edges per node, built
and processed with NetworkX.  PyOMP cannot run it: "Numba cannot compile
NetworkX's Graph object and related functions" — reproduced by the
envelope checker rejecting attribute calls on the graph object.

The loop uses ``schedule(runtime)`` so the Fig. 7 scheduling-policy
sweep can switch policies through ``omp_set_schedule`` without
recompiling.
"""

from __future__ import annotations

import networkx as nx

from repro.apps.base import AppSpec
from repro.api import omp


def make_graph(nodes: int, degree: int, seed: int = 5150) -> nx.Graph:
    # Power-law-ish degree spread creates the load imbalance that makes
    # dynamic scheduling matter (paper Fig. 7's discussion).
    graph = nx.barabasi_albert_graph(nodes, max(1, degree // 2),
                                     seed=seed)
    return graph


def make_input(nodes: int, degree: int, seed: int = 5150) -> dict:
    graph = make_graph(nodes, degree, seed)
    return {"graph": graph, "nodes": list(graph.nodes()),
            "count": graph.number_of_nodes()}


def sequential(graph, nodes, count):
    coefficients = [0.0] * count
    for index in range(count):
        coefficients[index] = _local_clustering(graph, nodes[index])
    return coefficients


def _local_clustering(graph, node) -> float:
    neighbors = list(graph[node])
    degree = len(neighbors)
    if degree < 2:
        return 0.0
    links = 0
    adjacency = graph.adj
    for position, u in enumerate(neighbors):
        u_adj = adjacency[u]
        for v in neighbors[position + 1:]:
            if v in u_adj:
                links += 1
    return 2.0 * links / (degree * (degree - 1))


def kernel(graph, nodes, count, threads):
    coefficients = [0.0] * count
    adjacency = graph.adj
    with omp("parallel for num_threads(threads) schedule(runtime)"):
        for index in range(count):
            node = nodes[index]
            neighbors = list(adjacency[node])
            degree = len(neighbors)
            if degree < 2:
                coefficients[index] = 0.0
            else:
                links = 0
                for position in range(degree - 1):
                    u_adj = adjacency[neighbors[position]]
                    for offset in range(position + 1, degree):
                        if neighbors[offset] in u_adj:
                            links += 1
                coefficients[index] = (2.0 * links
                                       / (degree * (degree - 1)))
    return coefficients


# NetworkX adjacency lookups dominate: native compilation cannot reach
# inside the library (paper: "Compiled modes offer no significant
# advantage"), so all four modes share the same source.
kernel_dt = kernel


def pyomp_kernel(graph, nodes, count, threads):
    coefficients = [0.0] * count
    with openmp("parallel for num_threads(threads)"):  # noqa: F821
        for index in range(count):
            coefficients[index] = graph.degree(nodes[index])
    return coefficients


def verify(result, reference) -> bool:
    if len(result) != len(reference):
        return False
    return all(abs(a - b) < 1e-9 for a, b in zip(result, reference))


def verify_against_networkx(result, graph, nodes) -> bool:
    """Stronger check used by the integration tests."""
    expected = nx.clustering(graph)
    return all(abs(result[index] - expected[node]) < 1e-9
               for index, node in enumerate(nodes))


SPEC = AppSpec(
    name="clustering",
    title="Clustering coefficient",
    make_input=make_input,
    sequential=sequential,
    kernel=kernel,
    kernel_dt=kernel_dt,
    pyomp=pyomp_kernel,
    verify=verify,
    sizes={
        "test": {"nodes": 120, "degree": 8},
        "default": {"nodes": 1500, "degree": 12},
        "paper": {"nodes": 300_000, "degree": 100},
    },
    table1=None,
)
