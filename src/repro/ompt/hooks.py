"""The OMPT-style tool-callback interface.

Native OpenMP runtimes expose the OMPT tools interface (OpenMP 5.x
chapter 4): a tool registers callbacks and the runtime invokes them at
well-defined execution events.  This module is the reproduction's
analogue.  A tool subclasses :class:`ToolHooks`, overrides the events it
cares about, and attaches itself with ``runtime.attach_tool(tool)``.

Dispatch discipline mirrors the tracer's: every instrumented site reads
one attribute (``runtime.tool``) and branches on ``None``, so a runtime
with no tool attached pays a single attribute read per event site.
Multiple attached tools are fanned out through :class:`ToolDispatcher`.

Callback catalogue (thread numbers are team-relative, as everywhere in
the runtime):

===================  =====================================================
callback             fired when
===================  =====================================================
``thread_begin``     a runtime-managed native thread starts (fires on
                     the new thread, before its first implicit task)
``thread_end``       a runtime-managed native thread retires (pool
                     trim/shutdown, or a spawn-per-region join)
``thread_idle``      a hot-team pool worker parks between regions
                     (``begin``) or is handed its next region (``end``)
``parallel_begin``   the encountering thread forks a team
``parallel_end``     the team joined (after the implicit barrier)
``implicit_task``    a team member starts/ends its implicit task
``work``             a worksharing unit is dispatched: one loop chunk,
                     one claimed section, or the selected single
``task_create``      an explicit task is submitted
``task_schedule``    an explicit task starts executing
``task_steal``       an explicit task was claimed from another thread's
                     deque (fires just before its ``task_schedule``)
``task_complete``    an explicit task finished (tasking layer)
``sync_region``      barrier/taskwait enter and release; the release
                     carries the measured wait time in seconds
``mutex_acquire``    a mutex was *not* immediately available and the
                     thread is about to block on it
``mutex_acquired``   a mutex was obtained (wait time is 0.0 for
                     uncontended acquisitions)
``mutex_released``   a mutex was released
``plan``             inspector–executor plan activity: a plan was
                     built, served from the plan cache, or executed
                     (see :mod:`repro.plan`)
===================  =====================================================
"""

from __future__ import annotations


class ToolHooks:
    """Base tool: every callback is a no-op.  Subclass and override.

    Callbacks run inline on runtime threads, inside parallel regions:
    implementations must be thread-safe, must not raise, and should be
    cheap — a slow callback stalls the thread that fired it.
    """

    # -- native threads ---------------------------------------------------

    def thread_begin(self, ttype: str, ident: int) -> None:
        """A runtime-managed native thread started.

        ``ttype`` is ``"pool-worker"`` for hot-team pool members or
        ``"region-worker"`` for spawn-per-region threads
        (``OMP4PY_HOT_TEAMS=0``); ``ident`` is the native
        ``threading.get_ident()`` value.  Fires on the new thread.
        """

    def thread_end(self, ttype: str, ident: int) -> None:
        """A runtime-managed native thread retired (idle trim, pool
        shutdown, or the join of a spawn-per-region worker)."""

    def thread_idle(self, ident: int, endpoint: str) -> None:
        """A pool worker parked between regions (``endpoint ==
        "begin"``) or was handed its next region's implicit task
        (``"end"`` — one fire per pool reuse)."""

    # -- parallel regions -------------------------------------------------

    def parallel_begin(self, thread: int, team_size: int) -> None:
        """The encountering thread is about to fork a team."""

    def parallel_end(self, thread: int, team_size: int) -> None:
        """The team joined and the region's results are visible."""

    def implicit_task(self, thread: int, endpoint: str,
                      team_size: int) -> None:
        """A team member begins/ends its implicit task.

        ``endpoint`` is ``"begin"`` or ``"end"``.
        """

    # -- worksharing ------------------------------------------------------

    def work(self, thread: int, wstype: str, low: int, high: int) -> None:
        """One worksharing unit was handed to ``thread``.

        ``wstype`` is ``"loop"`` (``low``/``high`` bound the dispatched
        chunk), ``"sections"`` (``low`` is the claimed section index,
        ``high == low + 1``) or ``"single"`` (``(0, 1)``).
        """

    # -- tasking ----------------------------------------------------------

    def task_create(self, thread: int, task_id: int) -> None:
        """An explicit task was submitted by ``thread``."""

    def task_schedule(self, thread: int, task_id: int) -> None:
        """An explicit task begins execution on ``thread``."""

    def task_steal(self, thread: int, task_id: int, victim: int) -> None:
        """``thread`` stole a task from ``victim``'s deque.

        Fires on the thief, immediately before the task's
        ``task_schedule``; tasks popped from the executing thread's own
        deque (or claimed directly at a taskwait) never fire it.
        """

    def task_complete(self, thread: int, task_id: int) -> None:
        """An explicit task finished on ``thread``."""

    # -- synchronization --------------------------------------------------

    def sync_region(self, thread: int, kind: str, endpoint: str,
                    wait_time: float | None) -> None:
        """Barrier or taskwait boundary.

        ``kind`` is ``"barrier"`` or ``"taskwait"``; ``endpoint`` is
        ``"enter"`` (``wait_time is None``) or ``"release"``
        (``wait_time`` is the seconds spent inside, including any tasks
        executed while waiting).
        """

    def mutex_acquire(self, thread: int, kind: str, handle) -> None:
        """``thread`` is about to block on a contended mutex.

        ``kind`` is ``"critical"``, ``"atomic"``, ``"lock"`` or
        ``"nest_lock"``; ``handle`` identifies the mutex instance (the
        critical section name or the lock object's id).
        """

    def mutex_acquired(self, thread: int, kind: str, handle,
                       wait_time: float) -> None:
        """``thread`` obtained the mutex after ``wait_time`` seconds
        (0.0 when the acquisition was uncontended)."""

    def mutex_released(self, thread: int, kind: str, handle) -> None:
        """``thread`` released the mutex."""

    # -- inspector–executor plans -----------------------------------------

    def plan(self, thread: int, event: str, payload: dict) -> None:
        """Inspector–executor plan activity (:mod:`repro.plan`).

        ``event`` is ``"build"`` (the inspector ran), ``"cache_hit"``
        (an existing plan was served for the same (map, partition
        size)), or ``"execute"`` (a plan ran color-by-color).
        ``payload`` carries ``source`` (the map name),
        ``partition_size``, ``partitions``, ``colors``,
        ``conflict_edges`` and, for executions, ``threads``.
        """


#: Every dispatchable callback name, in catalogue order.
CALLBACK_NAMES = ("thread_begin", "thread_end", "thread_idle",
                  "parallel_begin", "parallel_end", "implicit_task",
                  "work", "task_create", "task_schedule", "task_steal",
                  "task_complete", "sync_region", "mutex_acquire",
                  "mutex_acquired", "mutex_released", "plan")


class ToolDispatcher(ToolHooks):
    """Fans every callback out to a tuple of attached tools.

    Built by :meth:`repro.runtime.engine.OmpRuntime.attach_tool` when
    more than one tool is attached; a single tool is bound directly so
    the common case has no indirection.
    """

    def __init__(self, tools):
        self.tools = tuple(tools)

    def thread_begin(self, ttype, ident):
        for tool in self.tools:
            tool.thread_begin(ttype, ident)

    def thread_end(self, ttype, ident):
        for tool in self.tools:
            tool.thread_end(ttype, ident)

    def thread_idle(self, ident, endpoint):
        for tool in self.tools:
            tool.thread_idle(ident, endpoint)

    def parallel_begin(self, thread, team_size):
        for tool in self.tools:
            tool.parallel_begin(thread, team_size)

    def parallel_end(self, thread, team_size):
        for tool in self.tools:
            tool.parallel_end(thread, team_size)

    def implicit_task(self, thread, endpoint, team_size):
        for tool in self.tools:
            tool.implicit_task(thread, endpoint, team_size)

    def work(self, thread, wstype, low, high):
        for tool in self.tools:
            tool.work(thread, wstype, low, high)

    def task_create(self, thread, task_id):
        for tool in self.tools:
            tool.task_create(thread, task_id)

    def task_schedule(self, thread, task_id):
        for tool in self.tools:
            tool.task_schedule(thread, task_id)

    def task_steal(self, thread, task_id, victim):
        for tool in self.tools:
            tool.task_steal(thread, task_id, victim)

    def task_complete(self, thread, task_id):
        for tool in self.tools:
            tool.task_complete(thread, task_id)

    def sync_region(self, thread, kind, endpoint, wait_time):
        for tool in self.tools:
            tool.sync_region(thread, kind, endpoint, wait_time)

    def mutex_acquire(self, thread, kind, handle):
        for tool in self.tools:
            tool.mutex_acquire(thread, kind, handle)

    def mutex_acquired(self, thread, kind, handle, wait_time):
        for tool in self.tools:
            tool.mutex_acquired(thread, kind, handle, wait_time)

    def mutex_released(self, thread, kind, handle):
        for tool in self.tools:
            tool.mutex_released(thread, kind, handle)

    def plan(self, thread, event, payload):
        for tool in self.tools:
            tool.plan(thread, event, payload)
