"""Automated verification of the paper's qualitative claims.

Reproducing a figure means reproducing its *shape*: who wins, by
roughly what factor, where the crossovers are.  This module encodes the
shapes of Figs. 5-7 (and the Section IV-B findings) as explicit checks
over freshly measured sweeps, so `python -m repro.analysis.report
check` gives a PASS/FAIL verdict per claim instead of a table to
eyeball.  Bands are deliberately generous — they assert orderings and
coarse factors, not absolute numbers (see EXPERIMENTS.md).
"""

from __future__ import annotations

import dataclasses

from repro.analysis import runner
from repro.apps import get_app
from repro.modes import Mode


@dataclasses.dataclass
class ClaimResult:
    claim: str
    passed: bool
    detail: str

    def line(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        return f"[{status}] {self.claim}\n       {self.detail}"


def _projected(points, series, threads):
    for point in points:
        if point.series == series and point.threads == threads \
                and point.measurement is not None:
            return point.projected
    return None


def check_numerical_shapes(profile: str = "test",
                           threads: tuple[int, int] = (1, 4),
                           repeats: int = 2,
                           apps: tuple[str, ...] = ("pi", "jacobi"),
                           ) -> list[ClaimResult]:
    """Fig. 5's claims on a subset of vectorizable numerical apps."""
    low, high = threads
    results: list[ClaimResult] = []
    for name in apps:
        spec = get_app(name)
        points = runner.sweep(spec, [low, high], profile,
                              repeats=repeats)

        interpreted = _projected(points, "pure", low)
        native = _projected(points, "compileddt", low)
        ratio = interpreted / native if interpreted and native else 0
        results.append(ClaimResult(
            claim=f"fig5/{name}: CompiledDT clearly outruns Pure",
            passed=ratio > 2.0,
            detail=f"pure/compileddt at {low} thr = {ratio:.1f}x "
                   f"(claim: > 2x; paper: orders of magnitude)"))

        hybrid = _projected(points, "hybrid", low)
        band = (0.5 < hybrid / interpreted < 1.5
                if hybrid and interpreted else False)
        results.append(ClaimResult(
            claim=f"fig5/{name}: Hybrid in the interpreted tier",
            passed=band,
            detail=f"hybrid/pure at {low} thr = "
                   f"{hybrid / interpreted if interpreted else 0:.2f} "
                   f"(claim: 0.5-1.5)"))

        base = _projected(points, "pure", low)
        scaled = _projected(points, "pure", high)
        speedup = base / scaled if base and scaled else 0
        results.append(ClaimResult(
            claim=f"fig5/{name}: Pure projected time scales with "
                  f"threads",
            passed=speedup > 1.5,
            detail=f"projected self-speedup x{high}/x{low} = "
                   f"{speedup:.2f}x (claim: > 1.5x)"))

        pyomp = _projected(points, "pyomp", low)
        if pyomp and native:
            ratio = pyomp / native
            results.append(ClaimResult(
                claim=f"fig5/{name}: PyOMP in CompiledDT's tier",
                passed=0.33 < ratio < 3.0,
                detail=f"pyomp/compileddt = {ratio:.2f} "
                       f"(claim: 0.33-3; paper: ~1.05)"))
    return results


def check_envelope_shapes() -> list[ClaimResult]:
    """Section IV-A/IV-B: what PyOMP cannot run."""
    from repro.pyomp import PyOMPCompileError, PyOMPInternalError
    expectations = {
        "qsort": (PyOMPCompileError, "if clause"),
        "clustering": (PyOMPCompileError, "Numba type"),
        "wordcount": (PyOMPCompileError, "dict"),
        "bfs": (PyOMPInternalError, "Numba"),
    }
    results = []
    for name, (exc_type, needle) in expectations.items():
        spec = get_app(name)
        try:
            spec.pyomp_variant()
        except exc_type as error:
            ok = needle.lower() in str(error).lower()
            detail = f"raised {exc_type.__name__}: {error}"
        except Exception as error:  # noqa: BLE001
            ok, detail = False, f"unexpected {type(error).__name__}"
        else:
            ok, detail = False, "unexpectedly compiled"
        results.append(ClaimResult(
            claim=f"envelope/{name}: PyOMP cannot run it "
                  f"({exc_type.__name__})",
            passed=ok, detail=detail))
    return results


def check_scheduling_shape(profile: str = "test", threads: int = 8,
                           repeats: int = 3) -> list[ClaimResult]:
    """Fig. 7's core claim on the imbalanced clustering workload.

    Eight threads make the hub imbalance unambiguous: unchunked static
    strands the Barabási–Albert hubs in one member's block (~45% of the
    work), while dynamic spreads them (~1/threads + handout overhead).
    """
    spec = get_app("clustering")
    grids = runner.schedule_sweep(
        spec, [threads], ("static", "dynamic", "guided"), chunk=8,
        profile=profile, modes=[Mode.HYBRID], repeats=repeats)

    def critical(policy):
        point = grids[policy][0]
        return point.measurement.critical_cpu

    static, dynamic, guided = (critical(p) for p in
                               ("static", "dynamic", "guided"))
    results = [ClaimResult(
        claim="fig7/clustering: dynamic balances better than static",
        passed=dynamic < static * 0.9,
        detail=f"critical-path cpu: dynamic {dynamic:.4f}s vs static "
               f"{static:.4f}s (claim: dynamic < 0.9x static)")]
    results.append(ClaimResult(
        claim="fig7/clustering: guided trails dynamic "
              "(large first chunks recreate the hub imbalance)",
        passed=guided > dynamic,
        detail=f"critical-path cpu: guided {guided:.4f}s vs dynamic "
               f"{dynamic:.4f}s"))
    return results


def check_nonnumerical_shape(profile: str = "test",
                             repeats: int = 2) -> list[ClaimResult]:
    """Fig. 6: native compilation buys nothing on wordcount."""
    spec = get_app("wordcount")
    points = runner.sweep(spec, [2], profile,
                          modes=[Mode.PURE, Mode.COMPILED_DT],
                          include_pyomp=False, repeats=repeats)
    pure = _projected(points, "pure", 2)
    native = _projected(points, "compileddt", 2)
    ratio = pure / native if pure and native else 0
    return [ClaimResult(
        claim="fig6/wordcount: all modes in one tier "
              "(str/dict work defeats native compilation)",
        passed=0.4 < ratio < 2.5,
        detail=f"pure/compileddt = {ratio:.2f} (claim: 0.4-2.5)")]


def run_all(profile: str = "test", repeats: int = 2) -> list[ClaimResult]:
    results: list[ClaimResult] = []
    results.extend(check_numerical_shapes(profile, repeats=repeats))
    results.extend(check_envelope_shapes())
    results.extend(check_scheduling_shape(profile, repeats=repeats))
    results.extend(check_nonnumerical_shape(profile, repeats=repeats))
    return results
