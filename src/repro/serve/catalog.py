"""The serveable-app catalog: adapters over the shipped benchmarks.

Three kinds of tenant workload are serveable:

* the nine paper apps (:mod:`repro.apps`) — inputs come from each
  spec's deterministic seeded builders, kernels from
  ``spec.variant(mode)``;
* ``jacobi_mpi`` — the paper's fig8 hybrid MPI+OpenMP Jacobi as the
  first multi-node tenant: the worker launches ``nodes`` ranks through
  :func:`repro.mpi.mpirun`, each running its OpenMP team, so one
  request elastically scales across the simulated cluster;
* ``_spin`` (debug builds only) — a kernel that never finishes, used
  by the hang tests to prove the in-worker watchdog turns a stuck
  request into a structured doctor report.

Field classification decides the data plane per input: numeric
rectangular values ride shared memory (:mod:`repro.serve.shm`),
JSON-representable scalars and small ragged values ride the control
pipe, and anything else (e.g. the clustering app's networkx graph) is
*rebuilt* in the worker from the same seeded builder — byte-identical
by construction, never pickled.
"""

from __future__ import annotations

import json
import time

import numpy as np

from repro.api import omp, omp_get_thread_num
from repro.errors import OmpError

#: Numeric lists shorter than this stay on the JSON control plane —
#: a segment per tiny vector costs more than it saves.
SHM_MIN_ELEMENTS = 64

#: JSON fields above this many encoded bytes are rebuilt in-worker
#: instead of shipped (the control pipe stays small).
JSON_MAX_BYTES = 1 << 20

#: Input fields the shipped kernels never write: workers use the
#: shared segment zero-copy instead of taking a private copy.
READ_ONLY_FIELDS = {
    "jacobi": {"a", "b"},
    "jacobi_mpi": {"a", "b"},
    "bfs": {"grid"},
    "md": set(),
}

#: Marker returned by :func:`reference_result` when an app has no
#: sequential reference (debug workloads): responses stay unverified.
NO_REFERENCE = object()


def serveable_apps(debug: bool = False) -> list[str]:
    from repro.apps import list_apps
    names = list_apps() + ["jacobi_mpi"]
    if debug:
        names.append("_spin")
    return names


def _jacobi_mpi_params(profile: str, overrides: dict) -> dict:
    from repro.apps import jacobi_mpi
    sizes = jacobi_mpi.SIZES.get(profile)
    if sizes is None:
        raise OmpError(f"unknown jacobi_mpi profile {profile!r}")
    params = {"iterations": 1000, "tol": 1e-6, "seed": 1234}
    params.update(sizes)
    params.update(overrides or {})
    return params


def build_inputs(app: str, profile: str, overrides: dict) -> dict:
    """The kernel inputs for one (app, profile, overrides) key.

    Deterministic: every shipped builder takes a fixed default seed,
    so the server and a rebuilding worker produce identical data.
    """
    if app == "jacobi_mpi":
        from repro.apps.jacobi import make_system
        params = _jacobi_mpi_params(profile, overrides)
        a, b = make_system(params["n"], params["seed"])
        return {"a": a, "b": b, "n": params["n"],
                "iterations": params["iterations"],
                "tol": params["tol"]}
    if app == "_spin":
        merged = {"seconds": -1.0}
        merged.update(overrides or {})
        return merged
    from repro.apps import get_app
    return get_app(app).inputs(profile, **(overrides or {}))


def reference_result(app: str, profile: str, overrides: dict):
    """Sequential reference for the digest check (fresh inputs)."""
    if app == "_spin":
        return NO_REFERENCE
    inputs = build_inputs(app, profile, overrides)
    if app == "jacobi_mpi":
        from repro.apps import jacobi
        return jacobi.sequential(**inputs)
    from repro.apps import get_app
    return get_app(app).sequential(**inputs)


def classify_inputs(app: str, inputs: dict) -> tuple[dict, dict, list]:
    """Split inputs into (shm arrays, JSON scalars, rebuild fields).

    Returns ``(arrays, scalars, rebuild)`` where ``arrays`` maps field
    name to ``(ndarray, container, read_only)``.
    """
    read_only = READ_ONLY_FIELDS.get(app, set())
    arrays: dict[str, tuple] = {}
    scalars: dict[str, object] = {}
    rebuild: list[str] = []
    for field, value in inputs.items():
        if isinstance(value, (bool, int, float, str)) or value is None:
            scalars[field] = value
            continue
        array = None
        container = "ndarray"
        if isinstance(value, np.ndarray):
            array = value
        elif isinstance(value, (list, tuple)):
            try:
                candidate = np.asarray(value)
            except (ValueError, TypeError):
                candidate = None
            if candidate is not None and candidate.dtype != object:
                array = candidate
                container = "list"
        if array is not None and array.dtype.kind in "fiuc" \
                and array.size >= SHM_MIN_ELEMENTS:
            arrays[field] = (array, container, field in read_only)
            continue
        try:
            encoded = json.dumps(value)
        except (TypeError, ValueError):
            rebuild.append(field)
            continue
        if len(encoded) > JSON_MAX_BYTES:
            rebuild.append(field)
        else:
            scalars[field] = value
    return arrays, scalars, rebuild


# -- worker-side execution ----------------------------------------------

_SPIN_KERNEL = None


def _spin(seconds, threads):
    # seconds >= 0: hold the team busy for that long (chaos tests kill
    # the worker mid-request).  seconds < 0: deadlock deterministically
    # via an unmatched barrier (cf. examples/faults) so the in-worker
    # watchdog produces a structured deadlock report for a truly hung
    # kernel; the fleet's deadline then reaps the worker.
    deadline = time.monotonic() + seconds
    with omp("parallel num_threads(threads)"):
        if seconds >= 0:
            while time.monotonic() < deadline:
                time.sleep(0.001)
        else:
            if omp_get_thread_num() == 0:
                omp("barrier")
    return 0


def _spin_kernel():
    global _SPIN_KERNEL
    if _SPIN_KERNEL is None:
        from repro.decorator import transform
        from repro.modes import Mode
        _SPIN_KERNEL = transform(_spin, Mode.PURE)
    return _SPIN_KERNEL


def execute(app: str, mode: str, threads: int, nodes: int,
            kwargs: dict):
    """Run one request's kernel (inside a worker process)."""
    if app == "jacobi_mpi":
        from repro.apps.jacobi_mpi import rank_main
        from repro.mpi import mpirun
        results = mpirun(nodes, rank_main, kwargs["a"], kwargs["b"],
                         kwargs["n"], kwargs["iterations"],
                         kwargs["tol"], threads, mode)
        return results[0]
    if app == "_spin":
        return _spin_kernel()(threads=threads, **kwargs)
    from repro.apps import get_app
    from repro.modes import Mode
    spec = get_app(app)
    parsed = Mode.parse(mode)
    return spec.variant(parsed)(threads=threads, **kwargs)
