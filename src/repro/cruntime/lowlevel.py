"""Atomics-based low-level primitives (the cruntime's ``.pyx`` modules).

Where the pure runtime coordinates with mutexes, this module uses the
:mod:`repro.atomics` substrate:

* shared counters are :class:`~repro.atomics.AtomicLong` — dynamic
  scheduling advances with ``fetch_add``, guided scheduling with a
  ``compare_exchange`` retry loop;
* task-queue appends link nodes with a pointer ``compare_exchange``
  (Michael–Scott style, with tail helping) instead of a queue mutex;
* shared-slot creation uses the atomic-swap protocol: every late
  arriver's candidate slot is discarded in favour of the winner's;
* events are :class:`CEvent`, a slim flag-first event mirroring the
  paper's direct use of the interpreter-internal ``PyEvent`` (the
  ``is_set`` fast path never touches a lock).
"""

from __future__ import annotations

import threading

from repro.atomics import AtomicLong, atomic_setdefault, cas_attr


class CEvent:
    """Event with an atomic-flag fast path (the ``PyEvent`` analogue)."""

    __slots__ = ("_flag", "_cond")

    def __init__(self):
        self._flag = AtomicLong(0)
        self._cond = threading.Condition(threading.Lock())

    def is_set(self) -> bool:
        return self._flag.load() != 0

    def set(self) -> None:
        if self._flag.swap(1) == 0:
            with self._cond:
                self._cond.notify_all()

    def clear(self) -> None:
        self._flag.store(0)

    def wait(self, timeout: float | None = None) -> bool:
        if self._flag.load() != 0:
            return True
        with self._cond:
            if self._flag.load() != 0:
                return True
            self._cond.wait(timeout)
        return self._flag.load() != 0


class NativeLowLevel:
    """Primitives for the native-simulation runtime."""

    name = "cruntime"

    @staticmethod
    def make_mutex():
        # Locks that must block (critical sections, the OpenMP lock API)
        # are native pthread mutexes in the real cruntime too.
        return threading.Lock()

    @staticmethod
    def make_event():
        return CEvent()

    @staticmethod
    def make_counter(initial: int = 0):
        return AtomicLong(initial)

    @staticmethod
    def queue_append(queue, node) -> None:
        """Lock-free append: CAS the tail's next-reference, helping a
        stale tail forward when the CAS loses."""
        while True:
            tail = queue.tail
            nxt = tail.next
            if nxt is None:
                if cas_attr(tail, "next", None, node):
                    break
            else:
                # Help: swing the (advisory) tail pointer forward.
                queue.tail = nxt
        queue.tail = node

    @staticmethod
    def slot_get_or_create(table: dict, lock, key, factory):
        """Atomic-swap slot creation; the loser's slot is discarded."""
        slot = table.get(key)
        if slot is not None:
            return slot
        return atomic_setdefault(table, key, factory())
