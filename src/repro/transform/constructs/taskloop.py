"""Lowering of ``taskloop`` (OpenMP 4.5; future-work prototype).

The paper's Section V classifies ``taskloop`` as a straightforward
extension because its semantics compose existing constructs — and the
lowering shows it: the iteration space is cut into grains, each grain's
body becomes a task function (exactly the ``task`` machinery, including
``firstprivate`` capture through argument defaults), and, unless
``nogroup`` is present, a trailing ``task_wait`` provides the implicit
taskgroup join.

Generated shape::

    __omp_total = __omp__.trip_count(start, stop, step)
    __omp_grain = <grainsize | ceil(total/num_tasks) | default>
    for __omp_t in range(0, __omp_total, __omp_grain):
        def __omp_taskloop_k(__omp_lo=__omp_t):
            <data-sharing declarations>
            for i in range(start + __omp_lo * step,
                           start + min(__omp_lo + __omp_grain,
                                       __omp_total) * step, step):
                <body>
        __omp__.task_submit(__omp_taskloop_k, if_=...)
    __omp__.task_wait()      # unless nogroup
"""

from __future__ import annotations

import ast

from repro.directives.model import Directive
from repro.errors import OmpSyntaxError
from repro.transform import astutil, datasharing
from repro.transform.context import TransformContext
from repro.transform.constructs.loops import (_collect_nest,
                                              _hoist_triplets,
                                              _range_triplet)


def handle_taskloop(node: ast.With, directive: Directive,
                    ctx: TransformContext) -> list[ast.stmt]:
    from repro.transform.rewriter import transform_statements

    loop = _collect_nest(node.body, 1, directive)[0]
    astutil.check_loop_body(loop.body, directive.source)
    if not isinstance(loop.target, ast.Name):
        raise OmpSyntaxError("taskloop variable must be a simple name",
                             directive=directive.source)

    ds = datasharing.classify(node.body, directive, ctx)
    # The taskloop iteration variable is private to each task: it must
    # stay a plain local of the task function, never nonlocal/global.
    for bucket in (ds.nonlocal_names, ds.global_names):
        if loop.target.id in bucket:
            bucket.remove(loop.target.id)
    fn_name = ctx.symbols.fresh("taskloop")
    generated_locals = set(ds.privates) | set(ds.firstprivates)
    ctx.push_scope(generated_locals, node.body)
    try:
        with ctx.enter_construct("taskloop"):
            new_body = transform_statements(loop.body, ctx)
    finally:
        ctx.pop_scope()

    hoist, triplet_names = _hoist_triplets(
        [_range_triplet(loop, directive)], ctx)
    start, stop, step = triplet_names[0]

    total_name = ctx.symbols.fresh("total")
    grain_name = ctx.symbols.fresh("grain")
    cursor_name = ctx.symbols.fresh("t")
    lo_param = ctx.symbols.fresh("lo")

    stmts: list[ast.stmt] = list(hoist)
    stmts.append(astutil.assign(total_name, astutil.rt_call(
        ctx.rt_name, "trip_count", [start, stop, step])))
    stmts.append(astutil.assign(grain_name,
                                _grain_expression(directive, ctx,
                                                  total_name)))

    # Inner task function: firstprivate defaults plus the grain cursor.
    arguments = datasharing.firstprivate_params(ds)
    arguments.args.append(ast.arg(arg=lo_param))
    arguments.defaults.append(astutil.name_load(cursor_name))

    grain_end = ast.Call(
        func=astutil.name_load("min"),
        args=[ast.BinOp(left=astutil.name_load(lo_param), op=ast.Add(),
                        right=astutil.name_load(grain_name)),
              astutil.name_load(total_name)],
        keywords=[])
    task_for = ast.For(
        target=ast.Name(id=loop.target.id, ctx=ast.Store()),
        iter=ast.Call(
            func=astutil.name_load("range"),
            args=[
                ast.BinOp(left=start, op=ast.Add(),
                          right=ast.BinOp(
                              left=astutil.name_load(lo_param),
                              op=ast.Mult(), right=step)),
                ast.BinOp(left=start, op=ast.Add(),
                          right=ast.BinOp(left=grain_end, op=ast.Mult(),
                                          right=step)),
                step,
            ],
            keywords=[]),
        body=new_body, orelse=[])

    inner: list[ast.stmt] = []
    inner.extend(datasharing.sharing_declarations(ds))
    inner.extend(datasharing.sentinel_inits(ds, ctx))
    inner.append(task_for)
    fndef = ast.FunctionDef(name=fn_name, args=arguments, body=inner,
                            decorator_list=[], returns=None)

    submit_keywords: list[tuple[str, ast.expr]] = []
    if_clause = directive.clause("if")
    if if_clause is not None:
        submit_keywords.append(("if_", astutil.parse_expression(
            if_clause.expr, directive.source)))
    submit = astutil.rt_call_stmt(ctx.rt_name, "task_submit",
                                  [astutil.name_load(fn_name)],
                                  submit_keywords)
    spawn_loop = ast.For(
        target=astutil.name_store(cursor_name),
        iter=ast.Call(func=astutil.name_load("range"),
                      args=[astutil.constant(0),
                            astutil.name_load(total_name),
                            astutil.name_load(grain_name)],
                      keywords=[]),
        body=[fndef, submit], orelse=[])
    stmts.append(spawn_loop)
    if not directive.has_clause("nogroup"):
        stmts.append(astutil.rt_call_stmt(ctx.rt_name, "task_wait"))
    for stmt in stmts:
        astutil.fix_locations(stmt, node)
    return stmts


def _grain_expression(directive: Directive, ctx: TransformContext,
                      total_name: str) -> ast.expr:
    grainsize = directive.clause("grainsize")
    if grainsize is not None:
        expr = astutil.parse_expression(grainsize.expr, directive.source)
        return ast.Call(func=astutil.name_load("max"),
                        args=[astutil.constant(1), expr], keywords=[])
    num_tasks = directive.clause("num_tasks")
    if num_tasks is not None:
        expr = astutil.parse_expression(num_tasks.expr, directive.source)
        # ceil(total / num_tasks), floored at 1.
        ceil_div = ast.BinOp(
            left=ast.BinOp(
                left=ast.BinOp(left=astutil.name_load(total_name),
                               op=ast.Add(), right=expr),
                op=ast.Sub(), right=astutil.constant(1)),
            op=ast.FloorDiv(), right=expr)
        return ast.Call(func=astutil.name_load("max"),
                        args=[astutil.constant(1), ceil_div], keywords=[])
    return astutil.rt_call(ctx.rt_name, "taskloop_default_grain",
                           [astutil.name_load(total_name)])
