"""Tests of the explicit tasking subsystem."""

import threading

import pytest

from repro.cruntime import cruntime
from repro.runtime import pure_runtime
from repro.runtime.tasking import (DONE, FREE, TaskNode,
                                   WorkStealingScheduler)


@pytest.fixture(params=["pure", "cruntime"])
def rt(request):
    return pure_runtime if request.param == "pure" else cruntime


class TestSchedulerUnit:
    def test_local_pop_is_lifo(self, rt):
        scheduler = WorkStealingScheduler(rt.lowlevel, 2)
        nodes = [TaskNode(lambda: None, None, rt.lowlevel)
                 for _ in range(3)]
        for node in nodes:
            scheduler.push(0, node)
        claimed = [scheduler.claim(0) for _ in range(3)]
        assert [node for node, _ in claimed] == nodes[::-1]
        assert all(victim == 0 for _, victim in claimed)
        assert scheduler.claim(0) is None
        assert scheduler.local_hits[0] == 3
        assert scheduler.steals == [0, 0]

    def test_steal_is_fifo_from_victim(self, rt):
        scheduler = WorkStealingScheduler(rt.lowlevel, 3)
        nodes = [TaskNode(lambda: None, None, rt.lowlevel)
                 for _ in range(3)]
        for node in nodes:
            scheduler.push(0, node)
        node, victim = scheduler.claim(2)
        assert node is nodes[0]  # the oldest entry of thread 0's deque
        assert victim == 0
        assert scheduler.steals[2] == 1
        assert scheduler.local_hits[2] == 0

    def test_claim_skips_nodes_claimed_elsewhere(self, rt):
        scheduler = WorkStealingScheduler(rt.lowlevel, 1)
        first = TaskNode(lambda: None, None, rt.lowlevel)
        second = TaskNode(lambda: None, None, rt.lowlevel)
        scheduler.push(0, first)
        scheduler.push(0, second)
        assert second.claim()  # e.g. a taskwait direct claim
        node, _ = scheduler.claim(0)
        assert node is first
        assert scheduler.claim(0) is None

    def test_has_work_advisory(self, rt):
        scheduler = WorkStealingScheduler(rt.lowlevel, 2)
        assert not scheduler.has_work()
        scheduler.push(1, TaskNode(lambda: None, None, rt.lowlevel))
        assert scheduler.has_work()
        scheduler.claim(1)
        assert not scheduler.has_work()

    def test_states(self, rt):
        node = TaskNode(lambda: None, None, rt.lowlevel)
        assert node.state.load() == FREE
        assert node.claim()
        assert not node.claim()
        node.finish()
        assert node.state.load() == DONE
        assert node.done
        assert node.event.is_set()

    def test_concurrent_claims_unique(self, rt):
        """Task-count conservation: every pushed node is claimed exactly
        once across concurrent owners and thieves."""
        size = 8
        scheduler = WorkStealingScheduler(rt.lowlevel, size)
        total = 400
        for index in range(total):
            scheduler.push(index % size,
                           TaskNode(lambda: None, None, rt.lowlevel))
        claimed = []
        lock = threading.Lock()

        def worker(thread_num):
            while True:
                result = scheduler.claim(thread_num)
                if result is None:
                    return
                with lock:
                    claimed.append(result[0])

        workers = [threading.Thread(target=worker, args=(num,))
                   for num in range(size)]
        for thread in workers:
            thread.start()
        for thread in workers:
            thread.join()
        assert len(claimed) == total
        assert len(set(map(id, claimed))) == total
        assert sum(scheduler.local_hits) + sum(scheduler.steals) == total


class TestTaskExecution:
    def test_all_tasks_complete_before_region_end(self, rt):
        done = []
        lock = threading.Lock()

        def region():
            state = rt.single_begin()
            if state.selected:
                for index in range(20):
                    def work(i=index):
                        with lock:
                            done.append(i)
                    rt.task_submit(work)
            rt.single_end(state)

        rt.parallel_run(region, num_threads=4)
        assert sorted(done) == list(range(20))

    def test_tasks_run_on_multiple_threads_or_at_least_complete(self, rt):
        executors = set()
        lock = threading.Lock()

        def region():
            state = rt.single_begin()
            if state.selected:
                for _ in range(30):
                    def work():
                        with lock:
                            executors.add(rt.get_thread_num())
                    rt.task_submit(work)
            rt.single_end(state)

        rt.parallel_run(region, num_threads=4)
        assert executors  # at least someone ran them; all completed

    def test_undeferred_task_runs_immediately(self, rt):
        order = []

        def region():
            rt.task_submit(lambda: order.append("task"), if_=False)
            order.append("after")

        rt.parallel_run(region, num_threads=1)
        assert order == ["task", "after"]

    def test_taskwait_waits_for_direct_children(self, rt):
        trace = []
        lock = threading.Lock()

        def region():
            state = rt.single_begin()
            if state.selected:
                for index in range(8):
                    def work(i=index):
                        with lock:
                            trace.append(i)
                    rt.task_submit(work)
                rt.task_wait()
                with lock:
                    trace.append("joined")
            rt.single_end(state)

        rt.parallel_run(region, num_threads=3)
        assert trace[-1] == "joined" or "joined" in trace
        joined_at = trace.index("joined")
        assert sorted(trace[:joined_at]) == list(range(8))

    def test_recursive_fibonacci_via_tasks(self, rt):
        def fib(n):
            if n <= 1:
                return n
            holder = {}

            def left():
                holder["a"] = fib(n - 1)

            def right():
                holder["b"] = fib(n - 2)

            rt.task_submit(left, if_=n > 8)
            rt.task_submit(right, if_=n > 8)
            rt.task_wait()
            return holder["a"] + holder["b"]

        result = {}

        def region():
            state = rt.single_begin()
            if state.selected:
                result["value"] = fib(14)
            rt.single_end(state)

        rt.parallel_run(region, num_threads=4)
        assert result["value"] == 377

    def test_nested_task_children_complete_by_region_end(self, rt):
        leaves = []
        lock = threading.Lock()

        def region():
            state = rt.single_begin()
            if state.selected:
                def parent():
                    for index in range(5):
                        def leaf(i=index):
                            with lock:
                                leaves.append(i)
                        rt.task_submit(leaf)
                rt.task_submit(parent)
            rt.single_end(state)

        rt.parallel_run(region, num_threads=3)
        assert sorted(leaves) == list(range(5))

    def test_threads_waiting_at_barrier_consume_tasks(self, rt):
        """The paper's barrier semantics: waiters execute queued work."""
        counted = []
        lock = threading.Lock()

        def region():
            state = rt.single_begin()
            if state.selected:
                for index in range(40):
                    def work(i=index):
                        with lock:
                            counted.append(i)
                    rt.task_submit(work)
            # The implicit barrier of single_end (and the join barrier)
            # must drain the queue.
            rt.single_end(state)

        rt.parallel_run(region, num_threads=4)
        assert len(counted) == 40
