"""Unit tests for the directive tokenizer."""

import pytest

from repro.directives.lexer import Token, TokenKind, TokenStream, tokenize
from repro.errors import OmpSyntaxError


def kinds(text):
    return [t.kind for t in tokenize(text)]


def texts(text):
    return [t.text for t in tokenize(text) if t.kind is not TokenKind.END]


class TestTokenize:
    def test_empty_string_yields_only_end(self):
        assert kinds("") == [TokenKind.END]

    def test_single_identifier(self):
        tokens = tokenize("parallel")
        assert tokens[0].kind is TokenKind.IDENT
        assert tokens[0].text == "parallel"

    def test_identifier_with_underscores(self):
        assert texts("num_threads") == ["num_threads"]

    def test_number(self):
        tokens = tokenize("42")
        assert tokens[0].kind is TokenKind.NUMBER
        assert tokens[0].text == "42"

    def test_punctuation(self):
        assert kinds("(),:;")[:-1] == [
            TokenKind.LPAREN, TokenKind.RPAREN, TokenKind.COMMA,
            TokenKind.COLON, TokenKind.SEMICOLON]

    def test_single_char_operators(self):
        assert texts("+ * - & | ^") == ["+", "*", "-", "&", "|", "^"]

    def test_double_char_operators_are_single_tokens(self):
        assert texts("&& ||") == ["&&", "||"]
        assert all(t.kind is TokenKind.OPERATOR
                   for t in tokenize("&& ||")[:-1])

    def test_whitespace_is_skipped(self):
        assert texts("  a   b  ") == ["a", "b"]

    def test_unknown_characters_become_other_tokens(self):
        tokens = tokenize("a > b")
        assert tokens[1].kind is TokenKind.OTHER
        assert tokens[1].text == ">"

    def test_positions_are_recorded(self):
        tokens = tokenize("ab cd")
        assert tokens[0].pos == 0
        assert tokens[1].pos == 3


class TestTokenStream:
    def test_advance_and_current(self):
        stream = TokenStream("a b")
        assert stream.current.text == "a"
        stream.advance()
        assert stream.current.text == "b"

    def test_advance_stops_at_end(self):
        stream = TokenStream("a")
        stream.advance()
        stream.advance()
        assert stream.at_end()

    def test_peek(self):
        stream = TokenStream("a b c")
        assert stream.peek().text == "b"
        assert stream.peek(2).text == "c"

    def test_expect_success(self):
        stream = TokenStream("(")
        token = stream.expect(TokenKind.LPAREN, "'('")
        assert token.kind is TokenKind.LPAREN

    def test_expect_failure_raises(self):
        stream = TokenStream("x")
        with pytest.raises(OmpSyntaxError, match="expected"):
            stream.expect(TokenKind.LPAREN, "'('")

    def test_raw_capture_simple(self):
        stream = TokenStream("if(n > 10) nowait")
        stream.advance()  # if
        stream.advance()  # (
        raw = stream.raw_until_balanced_rparen()
        assert raw.strip() == "n > 10"
        assert stream.current.text == "nowait"

    def test_raw_capture_nested_parens(self):
        stream = TokenStream("if(f(a, g(b))) x")
        stream.advance()
        stream.advance()
        assert stream.raw_until_balanced_rparen() == "f(a, g(b))"
        assert stream.current.text == "x"

    def test_raw_capture_string_with_paren(self):
        stream = TokenStream("if(s == ')(') y")
        stream.advance()
        stream.advance()
        assert stream.raw_until_balanced_rparen() == "s == ')('"
        assert stream.current.text == "y"

    def test_raw_capture_unbalanced_raises(self):
        stream = TokenStream("if(a")
        stream.advance()
        stream.advance()
        with pytest.raises(OmpSyntaxError, match="unbalanced"):
            stream.raw_until_balanced_rparen()


class TestToken:
    def test_is_ident_with_names(self):
        token = Token(TokenKind.IDENT, "for", 0)
        assert token.is_ident("for", "parallel")
        assert not token.is_ident("single")

    def test_is_ident_any(self):
        assert Token(TokenKind.IDENT, "x", 0).is_ident()
        assert not Token(TokenKind.NUMBER, "1", 0).is_ident()
