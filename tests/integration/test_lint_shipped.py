"""The shipped corpus must be lint-clean.

Mirrors the CI ``omplint`` gate: every file under ``src/repro/apps``
and ``examples`` is checked, and no error-severity finding may appear.
Running it through the CLI entry point also pins the exit-code
contract on real code rather than synthetic fixtures.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.lint import Severity, lint_file
from repro.lint.cli import main as lint_main

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
SHIPPED_DIRS = [REPO_ROOT / "src" / "repro" / "apps",
                REPO_ROOT / "examples"]

SHIPPED_FILES = sorted(path for base in SHIPPED_DIRS
                       for path in base.rglob("*.py"))


def test_shipped_corpus_is_nonempty():
    assert len(SHIPPED_FILES) >= 10


@pytest.mark.parametrize(
    "path", SHIPPED_FILES,
    ids=[str(p.relative_to(REPO_ROOT)) for p in SHIPPED_FILES])
def test_shipped_file_has_no_strict_findings(path):
    errors = [f for f in lint_file(path)
              if f.severity is Severity.ERROR]
    assert not errors, "\n".join(str(f) for f in errors)


def test_cli_gate_passes_on_shipped_code(capsys):
    code = lint_main(["--fail-on", "error",
                      *(str(d) for d in SHIPPED_DIRS)])
    out = capsys.readouterr().out
    assert code == 0
    assert "0 error(s)" in out
