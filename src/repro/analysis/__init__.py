"""Measurement and reporting harness for the paper's evaluation.

* :mod:`repro.analysis.features` — static directive analysis (Table I),
* :mod:`repro.analysis.timing` — wall time + no-GIL projection,
* :mod:`repro.analysis.runner` — mode × threads sweeps,
* :mod:`repro.analysis.report` — CLI printing paper-style tables
  (``python -m repro.analysis.report <table1|fig5|fig6|fig7|fig8|headline>``).
"""

from repro.analysis.timing import Measurement, measure

__all__ = ["Measurement", "measure"]
