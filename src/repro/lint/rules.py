"""The ``omplint`` rule engine: a region-aware walk over one function.

The walker mirrors the transformer's own traversal
(:mod:`repro.transform.rewriter`) but collects findings instead of
rewriting.  Sharing is resolved exactly the way the transformer would
resolve it — by calling :func:`repro.transform.datasharing.classify`
with the same scope frames — so the linter's notion of "shared" cannot
drift from the generated code's.

Region model
------------

Every ``parallel``/``task``/``taskloop`` directive opens a *data
environment*: ``classify`` splits the names its body assigns into
privatized ones (private/firstprivate/lastprivate/reduction), outer
shared ones (the generated ``nonlocal``/``global`` declarations), and
new thread-locals (everything else).  Worksharing directives nested in
a parallel region only *overlay* their own clause lists on that
environment; the worksharing loop index is implicitly private.

A write to an *outer shared* name races unless it happens inside a
``critical``/``atomic``/``master``/``single``/``ordered`` construct or
while an ``omp_set_lock`` lock is held in the same statement list.
"""

from __future__ import annotations

import ast
import dataclasses

from repro.directives import parse_directive
from repro.directives.model import Directive
from repro.directives.spec import DIRECTIVES
from repro.errors import OmpSyntaxError
from repro.lint import dataflow
from repro.lint.findings import Finding
from repro.transform import scope
from repro.transform.context import TransformContext
from repro.transform.datasharing import classify

#: Constructs that open a new data environment (classify applies).
_REGION_KINDS = frozenset({"parallel", "parallel for",
                           "parallel sections", "task", "taskloop"})
#: Constructs whose body only one thread (at a time) executes.
_PROTECTING = frozenset({"critical", "atomic", "master", "single",
                         "ordered"})
#: Worksharing constructs for the close-nesting rules.
_WORKSHARING = frozenset({"for", "sections", "single"})
#: Constructs a worksharing construct or barrier may not be closely
#: nested inside (OpenMP 3.0 §2.10; ``parallel`` resets the check).
_NO_CLOSE_NESTING = _WORKSHARING | frozenset(
    {"section", "master", "critical", "ordered", "task", "taskloop"})


def _compound_bodies(stmt: ast.stmt) -> list[list[ast.stmt]]:
    """Statement lists nested directly under a compound statement."""
    bodies: list[list[ast.stmt]] = []
    for field in ("body", "orelse", "finalbody"):
        value = getattr(stmt, field, None)
        if isinstance(value, list) and value \
                and isinstance(value[0], ast.stmt):
            bodies.append(value)
    for handler in getattr(stmt, "handlers", []):
        bodies.append(handler.body)
    return bodies


@dataclasses.dataclass
class _Region:
    """One entry of the construct stack."""

    kind: str
    #: Does this construct open a data environment?
    is_region: bool = False
    #: Privatized names (private/firstprivate/lastprivate/reduction,
    #: plus worksharing loop indices).
    privatish: set[str] = dataclasses.field(default_factory=set)
    #: Names whose writes reach the enclosing scope — racy unless
    #: synchronized.  Only populated when ``is_region``.
    outer: set[str] = dataclasses.field(default_factory=set)


class FunctionLinter:
    """Collects findings for one directive-bearing function."""

    def __init__(self, funcdef: ast.FunctionDef, *, filename: str,
                 module_globals: set[str]):
        self.funcdef = funcdef
        self.filename = filename
        self.findings: list[Finding] = []
        self.ctx = TransformContext(
            rt_name="__omp_lint__", module_globals=set(module_globals),
            taken_names=set(), filename=filename,
            module_name="<lint>")
        self.stack: list[_Region] = []

    # -- entry point ---------------------------------------------------

    def run(self) -> list[Finding]:
        self.ctx.push_scope(scope.function_params(self.funcdef),
                            self.funcdef.body)
        try:
            self._walk(self.funcdef.body, protected=False)
        finally:
            self.ctx.pop_scope()
        return self.findings

    # -- findings ------------------------------------------------------

    def _report(self, rule: str, message: str, node: ast.AST, *,
                variable: str | None = None,
                directive: Directive | str | None = None) -> None:
        text = directive.source if isinstance(directive, Directive) \
            else directive
        self.findings.append(Finding(
            rule=rule, message=message,
            lineno=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            variable=variable, function=self.funcdef.name,
            filename=self.filename, directive=text))

    # -- statement walk ------------------------------------------------

    def _walk(self, stmts: list[ast.stmt], protected: bool) -> None:
        """Walk one statement list, tracking held runtime locks."""
        lock_depth = 0
        for stmt in stmts:
            api_name = dataflow.api_call_name(stmt)
            if api_name in dataflow.LOCK_ACQUIRE:
                lock_depth += 1
                continue
            if api_name in dataflow.LOCK_RELEASE:
                lock_depth = max(0, lock_depth - 1)
                continue
            shielded = protected or lock_depth > 0
            if isinstance(stmt, ast.With):
                text = dataflow.with_directive(stmt)
                if text is not None:
                    self._handle_directive_block(stmt, text, shielded)
                    continue
            if isinstance(stmt, ast.Expr):
                text = dataflow.directive_text(stmt.value)
                if text is not None:
                    self._handle_standalone(stmt, text)
                    continue
            self._visit_plain(stmt, shielded)

    def _visit_plain(self, stmt: ast.stmt, protected: bool) -> None:
        for name, node in dataflow.stored_names(stmt):
            self._check_write(name, node, protected)
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return  # nested scope: no directives, no region writes
        if isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
            self._walk(stmt.body, protected)
            self._walk(stmt.orelse, protected)
        elif isinstance(stmt, ast.If):
            self._walk(stmt.body, protected)
            self._walk(stmt.orelse, protected)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            self._walk(stmt.body, protected)
        elif isinstance(stmt, ast.Try):
            self._walk(stmt.body, protected)
            for handler in stmt.handlers:
                self._walk(handler.body, protected)
            self._walk(stmt.orelse, protected)
            self._walk(stmt.finalbody, protected)

    # -- directive handling --------------------------------------------

    def _parse(self, text: str, node: ast.AST) -> Directive | None:
        try:
            return parse_directive(text)
        except OmpSyntaxError as error:
            self._report("OMP100", str(error), node, directive=text)
            return None

    def _handle_standalone(self, stmt: ast.Expr, text: str) -> None:
        directive = self._parse(text, stmt)
        if directive is None:
            return
        spec = DIRECTIVES.get(directive.name)
        if spec is not None and not spec.standalone:
            self._report(
                "OMP100", f"{directive.name!r} requires a structured "
                f"block; use 'with omp(...)'", stmt, directive=directive)
            return
        if directive.name == "barrier":
            self._check_barrier(stmt, directive)
        elif directive.name == "threadprivate":
            for name in directive.arguments:
                self.ctx.threadprivate.setdefault(name, name)

    def _handle_directive_block(self, node: ast.With, text: str,
                                protected: bool) -> None:
        directive = self._parse(text, node)
        if directive is None:
            # Still look inside the block so one bad directive does not
            # hide findings beneath it.
            self._walk(node.body, protected)
            return
        spec = DIRECTIVES.get(directive.name)
        if spec is not None and spec.standalone:
            self._report(
                "OMP100", f"{directive.name!r} is a standalone "
                f"directive; call it as omp(...) without 'with'",
                node, directive=directive)
            return
        if directive.name in _REGION_KINDS:
            self._enter_data_environment(node, directive, protected)
        elif directive.name in _WORKSHARING:
            self._enter_worksharing(node, directive, protected)
        else:
            # critical / atomic / master / ordered / section: pure
            # nesting + protection context.
            shield = protected or directive.name in _PROTECTING
            self.stack.append(_Region(kind=directive.name))
            try:
                self._walk(node.body, shield)
            finally:
                self.stack.pop()

    # -- data environments ---------------------------------------------

    def _classify(self, body: list[ast.stmt], directive: Directive,
                  node: ast.AST, *,
                  allow_lastprivate: bool) -> _Region | None:
        try:
            ds = classify(body, directive, self.ctx,
                          allow_lastprivate=allow_lastprivate)
        except OmpSyntaxError as error:
            self._report("OMP100", str(error), node, directive=directive)
            return None
        reduction_vars = {var for _op, var, _acc in ds.reductions}
        privatish = (set(ds.privates) | set(ds.firstprivates)
                     | set(ds.lastprivates) | reduction_vars)
        outer = (set(ds.nonlocal_names) | set(ds.global_names)) \
            - reduction_vars
        region = _Region(kind=directive.name, is_region=True,
                         privatish=privatish, outer=outer)
        self._check_clause_usage(body, directive, node,
                                 privates=ds.privates,
                                 firstprivates=ds.firstprivates)
        return region

    def _enter_data_environment(self, node: ast.With, directive: Directive,
                                protected: bool) -> None:
        del protected  # a new team/task: outer locks don't shield it
        loopish = directive.name in ("parallel for", "taskloop")
        region = self._classify(
            node.body, directive, node,
            allow_lastprivate=directive.name in ("parallel for",
                                                 "parallel sections"))
        if region is None:
            region = _Region(kind=directive.name, is_region=True)
        self.stack.append(region)
        self.ctx.push_scope(set(region.privatish), node.body)
        try:
            with self.ctx.enter_construct(directive.name.split()[0]):
                if loopish:
                    # The loop half of the combined construct counts as
                    # worksharing for the nesting/barrier rules.
                    marker = "for" if directive.name == "parallel for" \
                        else "taskloop"
                    self.stack.append(_Region(kind=marker))
                    try:
                        self._walk_worksharing_loop(
                            node, directive, region, False)
                    finally:
                        self.stack.pop()
                else:
                    self._walk(node.body, False)
        finally:
            self.ctx.pop_scope()
            self.stack.pop()

    def _enter_worksharing(self, node: ast.With, directive: Directive,
                           protected: bool) -> None:
        self._check_close_nesting(node, directive)
        in_parallel = any(r.is_region for r in self.stack)
        if in_parallel:
            # Overlay: the enclosing region's classification stands;
            # only this construct's own clause lists privatize further.
            region = _Region(
                kind=directive.name,
                privatish=set(directive.clause_vars("private"))
                | set(directive.clause_vars("firstprivate"))
                | set(directive.clause_vars("lastprivate"))
                | {var for clause in directive.all_clauses("reduction")
                   for var in clause.vars})
            self._check_clause_usage(
                node.body, directive, node,
                privates=directive.clause_vars("private"),
                firstprivates=directive.clause_vars("firstprivate"))
        else:
            # Orphaned worksharing: it may run inside a parallel region
            # of a caller, so classify it as a region of its own.
            region = self._classify(
                node.body, directive, node,
                allow_lastprivate=directive.name in ("for", "sections"))
            if region is None:
                region = _Region(kind=directive.name)
            region.is_region = True
        self.stack.append(region)
        try:
            with self.ctx.enter_construct(directive.name):
                if directive.name == "for":
                    self._walk_worksharing_loop(node, directive, region,
                                                protected)
                elif directive.name == "single":
                    self._walk(node.body, True)
                else:
                    self._walk(node.body, protected)
        finally:
            self.stack.pop()

    # -- worksharing loops ---------------------------------------------

    def _walk_worksharing_loop(self, node: ast.With, directive: Directive,
                               region: _Region, protected: bool) -> None:
        """Handle the loop nest under ``for``/``parallel for``."""
        loops = self._collect_nest(node, directive)
        if loops is None:
            self._walk(node.body, protected)
            return
        indices = {loop.target.id for loop in loops}
        # OpenMP privatizes the worksharing loop variable regardless of
        # its sharing in the enclosing region.
        region.privatish |= indices
        region.outer -= indices
        # For a collapsed nest only the innermost body holds user
        # statements; the outer bodies are just the nested loops.
        body = loops[-1].body
        self._check_lastprivate(body, directive, node)
        for name, site in self._index_writes(body, indices):
            self._report(
                "OMP107", f"worksharing loop index {name!r} is "
                f"modified inside the loop body", site,
                variable=name, directive=directive)
        self._walk(body, protected)

    def _collect_nest(self, node: ast.With,
                      directive: Directive) -> list[ast.For] | None:
        collapse = 1
        clause = directive.clause("collapse")
        if clause is not None:
            try:
                collapse = max(1, int(clause.expr))
            except (TypeError, ValueError):
                collapse = 1
        stmts = node.body
        loops: list[ast.For] = []
        for _level in range(collapse):
            body = [s for s in stmts if not isinstance(s, ast.Pass)]
            if len(body) != 1 or not isinstance(body[0], ast.For) \
                    or not isinstance(body[0].target, ast.Name):
                self._report(
                    "OMP100", "the body of a worksharing 'for' must be "
                    "a (perfectly nested) for loop over a simple index",
                    node, directive=directive)
                return None
            loops.append(body[0])
            stmts = body[0].body
        return loops

    def _index_writes(self, body: list[ast.stmt],
                      indices: set[str]) -> list[tuple[str, ast.AST]]:
        """Stores to any worksharing index, recursing through compound
        statements but not into nested scopes."""
        writes: list[tuple[str, ast.AST]] = []
        for stmt in body:
            for name, site in dataflow.stored_names(stmt):
                if name in indices:
                    writes.append((name, site))
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue
            for child_body in _compound_bodies(stmt):
                writes.extend(self._index_writes(child_body, indices))
        return writes

    # -- individual rules ----------------------------------------------

    def _check_write(self, name: str, node: ast.AST,
                     protected: bool) -> None:
        """Rule OMP101: unsynchronized write to an outer shared name."""
        region = None
        for entry in reversed(self.stack):
            if name in entry.privatish:
                return
            if entry.is_region:
                region = entry
                break
        if region is None or name in self.ctx.threadprivate:
            return
        if name not in region.outer or protected:
            return
        if region.kind in ("task", "taskloop") \
                and not isinstance(node, ast.AugAssign):
            # A plain store in a task body has a single writer per task
            # instance — the paper's Fig. 4 pattern (`fib1 = f(n-1)` +
            # taskwait) is race-free.  Only read-modify-write updates
            # of shared state are flagged inside tasks.
            return
        self._report(
            "OMP101", f"write to shared variable {name!r} inside a "
            f"{region.kind!r} region is not protected by a "
            f"critical/atomic/master/single construct, a reduction, "
            f"or a lock", node, variable=name)

    def _check_clause_usage(self, body: list[ast.stmt],
                            directive: Directive, node: ast.AST, *,
                            privates, firstprivates) -> None:
        """Rules OMP102 and OMP103 at region entry."""
        reads = scope.read_names(body)
        for name in dict.fromkeys(privates):
            if dataflow.first_use(body, name) == "read":
                self._report(
                    "OMP102", f"private variable {name!r} is read "
                    f"before its first assignment in the region (its "
                    f"private copy starts undefined)", node,
                    variable=name, directive=directive)
        for name in dict.fromkeys(firstprivates):
            if name not in reads:
                self._report(
                    "OMP103", f"firstprivate variable {name!r} is "
                    f"never read in the region; plain private(...) "
                    f"would do", node, variable=name, directive=directive)

    def _check_lastprivate(self, loop_body: list[ast.stmt],
                           directive: Directive, node: ast.AST) -> None:
        """Rule OMP104: lastprivate vars must be assigned in the body."""
        assigned = scope.assigned_names(loop_body)
        for name in dict.fromkeys(directive.clause_vars("lastprivate")):
            if name not in assigned:
                self._report(
                    "OMP104", f"lastprivate variable {name!r} is never "
                    f"assigned in the loop body, so no last value is "
                    f"written back", node, variable=name,
                    directive=directive)

    def _check_close_nesting(self, node: ast.AST,
                             directive: Directive) -> None:
        """Rule OMP105: worksharing closely nested in forbidden kinds."""
        for entry in reversed(self.stack):
            if entry.kind in ("parallel", "parallel for",
                              "parallel sections"):
                break
            if entry.kind in _NO_CLOSE_NESTING:
                self._report(
                    "OMP105", f"worksharing construct "
                    f"{directive.name!r} may not be closely nested "
                    f"inside a {entry.kind!r} region", node,
                    directive=directive)
                return

    def _check_barrier(self, node: ast.AST,
                       directive: Directive) -> None:
        """Rule OMP106: barriers where not every thread arrives."""
        for entry in reversed(self.stack):
            if entry.kind in ("parallel", "parallel for",
                              "parallel sections"):
                break
            if entry.kind in _NO_CLOSE_NESTING or entry.kind == "atomic":
                self._report(
                    "OMP106", f"barrier inside a {entry.kind!r} region "
                    f"deadlocks: not every thread of the team reaches "
                    f"it", node, directive=directive)
                return
