"""AST data-flow helpers for the linter.

Three ingredients the rule engine needs beyond what
:mod:`repro.transform.scope` already provides:

* directive discovery — which functions contain ``omp("...")`` markers,
* an evaluation-ordered *first use* analysis (read vs. write) for the
  private-use-before-init rule, and
* write-site extraction: the ``Name`` stores a statement performs in
  its own scope, in source order.

The first-use walk is deliberately optimistic: an assignment on *any*
path counts as an assignment, so conditional initialisation is never
flagged.  Races are reported by the sibling rule engine only when a
write is provably to a shared variable and provably unprotected.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator

from repro.transform.scope import _target_names

_NESTED_SCOPES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda,
                  ast.ClassDef)

#: Runtime-library lock calls the race rule treats as protection.
LOCK_ACQUIRE = frozenset({"omp_set_lock", "omp_set_nest_lock"})
LOCK_RELEASE = frozenset({"omp_unset_lock", "omp_unset_nest_lock"})


def directive_text(node: ast.expr) -> str | None:
    """The directive string if ``node`` is ``omp("...")``/``openmp("...")``.

    Unlike the transformer's strict extractor this never raises: the
    linter reports malformed markers as findings instead.
    """
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    is_omp = (isinstance(func, ast.Name) and func.id in ("omp", "openmp")) \
        or (isinstance(func, ast.Attribute)
            and func.attr in ("omp", "openmp"))
    if not is_omp:
        return None
    if len(node.args) != 1 or node.keywords:
        return None
    argument = node.args[0]
    if isinstance(argument, ast.Constant) and isinstance(
            argument.value, str):
        return argument.value
    return None


def with_directive(node: ast.With) -> str | None:
    """The directive string of a single-item ``with omp("..."):``."""
    if len(node.items) != 1 or node.items[0].optional_vars is not None:
        return None
    return directive_text(node.items[0].context_expr)


def contains_directives(funcdef: ast.FunctionDef) -> bool:
    """Does the function body mention any omp directive marker?"""
    for node in ast.walk(funcdef):
        if isinstance(node, ast.Call) and directive_text(node) is not None:
            return True
    return False


def api_call_name(stmt: ast.stmt) -> str | None:
    """The ``omp_*`` function name of a bare call statement, if any."""
    if not isinstance(stmt, ast.Expr) or not isinstance(stmt.value,
                                                        ast.Call):
        return None
    func = stmt.value.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def stored_names(stmt: ast.stmt) -> Iterator[tuple[str, ast.AST]]:
    """``(name, node)`` pairs this statement *itself* rebinds.

    Covers assignment statements, ``for`` targets, ``with ... as``
    bindings and walrus expressions anywhere in the statement's own
    expressions.  Does not descend into nested statement bodies (the
    walker recurses those itself) or nested scopes.
    """
    if isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            for name in _target_names(target):
                yield name, stmt
        yield from _walrus_stores(stmt.value)
    elif isinstance(stmt, ast.AugAssign):
        for name in _target_names(stmt.target):
            yield name, stmt
        yield from _walrus_stores(stmt.value)
    elif isinstance(stmt, ast.AnnAssign):
        for name in _target_names(stmt.target):
            yield name, stmt
        if stmt.value is not None:
            yield from _walrus_stores(stmt.value)
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        for name in _target_names(stmt.target):
            yield name, stmt
        yield from _walrus_stores(stmt.iter)
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            yield from _walrus_stores(item.context_expr)
            if item.optional_vars is not None:
                for name in _target_names(item.optional_vars):
                    yield name, stmt
    elif isinstance(stmt, (ast.Expr, ast.Return, ast.If, ast.While)):
        expr = stmt.value if isinstance(stmt, (ast.Expr, ast.Return)) \
            else stmt.test
        if expr is not None:
            yield from _walrus_stores(expr)


def _walrus_stores(expr: ast.expr) -> Iterator[tuple[str, ast.AST]]:
    for node in ast.walk(expr):
        if isinstance(node, ast.NamedExpr):
            for name in _target_names(node.target):
                yield name, node
        elif isinstance(node, _NESTED_SCOPES):
            return


# ----------------------------------------------------------------------
# Evaluation-ordered first-use analysis.

_READ, _WRITE = "read", "write"


def first_use(stmts: Iterable[ast.stmt], name: str) -> str | None:
    """``"read"``/``"write"``/``None``: how ``name`` is first used.

    Statements are scanned in order; within a statement, children are
    visited in evaluation order (an ``Assign`` evaluates its value
    before binding its targets, an ``AugAssign`` reads its target
    first).  A use inside a nested ``def``/``class``/``lambda`` counts
    as a read — the closure observes whatever the region bound.
    """
    for stmt in stmts:
        use = _first_use_node(stmt, name)
        if use is not None:
            return use
    return None


def _first_use_node(node: ast.AST, name: str) -> str | None:
    if isinstance(node, ast.Name):
        if node.id != name:
            return None
        return _WRITE if isinstance(node.ctx, (ast.Store, ast.Del)) \
            else _READ
    if isinstance(node, _NESTED_SCOPES):
        # The nested scope reads the outer binding at call time (via a
        # closure) but never rebinds it here; its *name*, though, is a
        # binding of this scope.
        if getattr(node, "name", None) == name:
            return _WRITE
        return _READ if _reads_anywhere(node, name) else None
    if isinstance(node, ast.Assign):
        return _first_use_children(name, node.value, *node.targets)
    if isinstance(node, ast.AnnAssign):
        children = [c for c in (node.value, node.target) if c is not None]
        return _first_use_children(name, *children)
    if isinstance(node, ast.AugAssign):
        # target op= value: the target is read before it is written.
        load = ast.Name(id=node.target.id, ctx=ast.Load()) \
            if isinstance(node.target, ast.Name) else node.target
        return _first_use_children(name, load, node.value, node.target)
    if isinstance(node, ast.NamedExpr):
        return _first_use_children(name, node.value, node.target)
    if isinstance(node, (ast.For, ast.AsyncFor)):
        return _first_use_children(name, node.iter, node.target,
                                   *node.body, *node.orelse)
    if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp,
                         ast.DictComp)):
        # Comprehensions own their targets; a mention of ``name`` in
        # their expressions is at most a read of the outer binding.
        return _READ if _reads_anywhere(node, name) else None
    return _first_use_children(name, *ast.iter_child_nodes(node))


def _first_use_children(name: str, *children: ast.AST) -> str | None:
    for child in children:
        use = _first_use_node(child, name)
        if use is not None:
            return use
    return None


def _reads_anywhere(node: ast.AST, name: str) -> bool:
    return any(isinstance(sub, ast.Name) and sub.id == name
               for sub in ast.walk(node))
