"""Atomics-based low-level primitives (the cruntime's ``.pyx`` modules).

Where the pure runtime coordinates with mutexes, this module uses the
:mod:`repro.atomics` substrate:

* shared counters are :class:`~repro.atomics.AtomicLong` — dynamic
  scheduling advances with ``fetch_add``, guided scheduling with a
  ``compare_exchange`` retry loop;
* the per-thread task deque is :class:`ChaseLevDeque`, a Chase–Lev-style
  owner/thief protocol: the owner works the bottom without
  synchronization, thieves advance ``top`` with ``compare_exchange``;
* shared-slot creation uses the atomic-swap protocol: every late
  arriver's candidate slot is discarded in favour of the winner's;
* events are :class:`CEvent`, a slim flag-first event mirroring the
  paper's direct use of the interpreter-internal ``PyEvent`` (the
  ``is_set`` fast path never touches a lock).
"""

from __future__ import annotations

import threading

from repro.atomics import AtomicLong, atomic_setdefault


class CEvent:
    """Event with an atomic-flag fast path (the ``PyEvent`` analogue)."""

    __slots__ = ("_flag", "_cond")

    def __init__(self):
        self._flag = AtomicLong(0)
        self._cond = threading.Condition(threading.Lock())

    def is_set(self) -> bool:
        return self._flag.load() != 0

    def set(self) -> None:
        if self._flag.swap(1) == 0:
            with self._cond:
                self._cond.notify_all()

    def clear(self) -> None:
        self._flag.store(0)

    def wait(self, timeout: float | None = None) -> bool:
        if self._flag.load() != 0:
            return True
        with self._cond:
            if self._flag.load() != 0:
                return True
            self._cond.wait(timeout)
        return self._flag.load() != 0


class ChaseLevDeque:
    """Chase–Lev-style work-stealing deque on atomic indices.

    The owner pushes and pops at ``bottom`` (LIFO); thieves advance the
    atomic ``top`` with ``compare_exchange`` (FIFO).  Storage is a dict
    keyed by the *absolute* index, and both indices grow monotonically
    for the deque's lifetime: slots are deleted as they are consumed, so
    memory is bounded by the live population and indices are never
    recycled (no ABA window for a stale thief to resurrect).

    Races the original algorithm closes with memory fences are closed
    here by the task-state ``claim()`` CAS in the scheduler above: the
    owner and a thief may both return the same node near the top==bottom
    boundary, but only one ``claim()`` succeeds.  What this structure
    does guarantee is that no pushed node is lost — every index in
    ``[top, bottom)`` stays readable until a consumer advanced past it.
    """

    __slots__ = ("_items", "_top", "_bottom")

    def __init__(self):
        self._items: dict = {}
        self._top = AtomicLong(0)
        self._bottom = 0  # owner-written; thieves read it advisorily

    def push(self, node) -> None:
        bottom = self._bottom
        self._items[bottom] = node
        # Publish after the slot write: thieves check top < bottom
        # before reading, so a visible index implies a visible slot.
        self._bottom = bottom + 1

    def pop(self):
        bottom = self._bottom - 1
        # Publish the decrement *before* reading top (the canonical
        # Chase-Lev order): thieves that load bottom afterwards back off
        # the contested slot.
        self._bottom = bottom
        top = self._top.load()
        if bottom < top:
            # Thieves emptied the deque under us; restore the empty
            # state (bottom == top) so future pushes are visible.
            self._bottom = top
            return None
        node = self._items.pop(bottom, None)
        if node is None:
            # An in-flight thief (holding a pre-decrement bottom) took
            # this slot and advanced top past us; resynchronize.
            top = self._top.load()
            if self._bottom < top:
                self._bottom = top
            return None
        if bottom > top:
            return node
        # Last element: race the thieves for it.
        won = self._top.compare_exchange(top, top + 1)
        self._bottom = top + 1
        return node if won else None

    def steal(self):
        top_counter = self._top
        while True:
            top = top_counter.load()
            if top >= self._bottom:
                return None
            node = self._items.get(top)
            if node is None:
                # The slot was consumed, which implies top already
                # advanced past our read; reload and retry.
                continue
            if top_counter.compare_exchange(top, top + 1):
                self._items.pop(top, None)
                return node

    def __bool__(self) -> bool:
        # Advisory emptiness check for pre-sleep rechecks.
        return self._top.load() < self._bottom

    def __len__(self) -> int:
        return max(0, self._bottom - self._top.load())

    def snapshot(self) -> list:
        """Advisory copy of the live window, oldest first — read by the
        stall watchdog to show unclaimed work.  Racy by design: a slot
        consumed mid-scan is simply skipped, matching the deque's
        no-lost-nodes (not no-duplicates) guarantee."""
        top = self._top.load()
        bottom = self._bottom
        return [node for index in range(top, bottom)
                if (node := self._items.get(index)) is not None]


class NativeLowLevel:
    """Primitives for the native-simulation runtime."""

    name = "cruntime"

    @staticmethod
    def make_mutex():
        # Locks that must block (critical sections, the OpenMP lock API)
        # are native pthread mutexes in the real cruntime too.
        return threading.Lock()

    @staticmethod
    def make_event():
        return CEvent()

    @staticmethod
    def make_counter(initial: int = 0):
        return AtomicLong(initial)

    @staticmethod
    def make_deque():
        return ChaseLevDeque()

    @staticmethod
    def slot_get_or_create(table: dict, lock, key, factory):
        """Atomic-swap slot creation; the loser's slot is discarded."""
        slot = table.get(key)
        if slot is not None:
            return slot
        return atomic_setdefault(table, key, factory())
