"""Shared benchmark configuration.

Benchmarks run at the compact ``test``/``default`` problem profiles so
``pytest benchmarks/ --benchmark-only`` finishes in minutes; the
paper-scale sweeps live in ``benchmarks/reproduce.py``.
"""

from __future__ import annotations

import pytest

#: Thread count used by benchmark kernels (the shapes of interest are
#: mode-to-mode ratios; thread scaling lives in the report harness).
BENCH_THREADS = 4


@pytest.fixture
def bench_threads() -> int:
    return BENCH_THREADS
