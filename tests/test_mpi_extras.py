"""Additional mini-MPI coverage: tags, reduce, buffer ops with custom
operations, and hybrid interactions."""

import numpy as np
import pytest

from repro.errors import OmpRuntimeError
from repro.mpi import mpirun
from repro.mpi.comm import MAX, MIN, PROD

pytestmark = pytest.mark.mpi


class TestPointToPointExtras:
    def test_tag_mismatch_raises(self):
        def main(comm):
            if comm.rank == 0:
                comm.send("x", dest=1, tag=7)
            else:
                comm.recv(source=0, tag=9)

        with pytest.raises(OmpRuntimeError):
            mpirun(2, main)

    def test_matching_tags(self):
        def main(comm):
            if comm.rank == 0:
                comm.send("payload", dest=1, tag=3)
                return None
            return comm.recv(source=0, tag=3)

        assert mpirun(2, main)[1] == "payload"

    def test_multiple_messages_fifo(self):
        def main(comm):
            if comm.rank == 0:
                for index in range(5):
                    comm.send(index, dest=1)
                return None
            return [comm.recv(source=0) for _ in range(5)]

        assert mpirun(2, main)[1] == [0, 1, 2, 3, 4]


class TestReduce:
    def test_reduce_only_root_gets_result(self):
        def main(comm):
            return comm.reduce(comm.rank + 1, root=1)

        results = mpirun(3, main)
        assert results[1] == 6
        assert results[0] is None
        assert results[2] is None

    def test_allreduce_with_prod(self):
        results = mpirun(
            4, lambda comm: comm.allreduce(comm.rank + 1, PROD))
        assert results == [24] * 4

    def test_buffer_allreduce_with_custom_op(self):
        def main(comm):
            out = np.empty(3)
            comm.Allreduce(np.full(3, float(comm.rank)), out,
                           op=np.maximum)
            return out

        for result in mpirun(3, main):
            assert list(result) == [2.0, 2.0, 2.0]

    def test_min_max_ops(self):
        lo = mpirun(3, lambda comm: comm.allreduce(comm.rank, MIN))
        hi = mpirun(3, lambda comm: comm.allreduce(comm.rank, MAX))
        assert lo == [0, 0, 0]
        assert hi == [2, 2, 2]


class TestHybridInteraction:
    def test_each_rank_forks_its_own_openmp_team(self):
        """Ranks are independent OpenMP initial threads (paper III-C)."""
        from repro.cruntime import cruntime

        def main(comm):
            seen = []
            cruntime.parallel_run(
                lambda: seen.append(
                    (comm.rank, cruntime.get_thread_num())),
                num_threads=2)
            return sorted(seen)

        results = mpirun(3, main)
        for rank, result in enumerate(results):
            assert result == [(rank, 0), (rank, 1)]

    def test_scatter_wrong_count_raises(self):
        def main(comm):
            blocks = [1, 2, 3] if comm.rank == 0 else None
            comm.scatter(blocks, root=0)

        with pytest.raises(OmpRuntimeError):
            mpirun(2, main)
