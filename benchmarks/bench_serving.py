"""Sustained-throughput benchmark for the serving layer (repro.serve).

Drives a mixed qsort+jacobi load through the HTTP front door of an
in-process :class:`~repro.serve.server.ServeServer` and reports
throughput, latency percentiles, and the worker-scaling figure the CI
``serve-smoke`` job gates on.

Scaling accounting: this host may have fewer cores than workers, so a
raw wall-clock ratio between a 1-worker and a 4-worker run measures
the machine, not the architecture (the same reasoning as the repo's
GIL projection model).  The fleet phase therefore reports

* ``measured_rps`` — completed requests per second of wall time, and
* ``capacity_rps = workers / mean(busy_cpu_s)`` — what the fleet
  sustains when every worker's CPU second counts, with per-request
  kernel CPU time measured worker-side via ``time.process_time``
  (immune to time-sharing between oversubscribed workers),

and ``scale = capacity_rps(fleet) / measured_rps(1 worker, 1 client)``.
The baseline denominator includes the full per-request overhead
(HTTP, dispatch, digest verification), so the gate still fails if the
serving layer's overhead — not kernel time — dominates.

Usage::

    python benchmarks/bench_serving.py [--workers 4] [--clients 8]
        [--requests 80] [--check] [--min-scale 4.0] [--max-p99 2.0]
        [--chaos] [--out results]

``--chaos`` kills one worker process mid-run and asserts every
accepted request still completes and no shared-memory segment leaks.
``smoke_records()`` is the ``reproduce.py --smoke`` entry point.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import threading
import time
import urllib.error
import urllib.request

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent
                       / "src"))

#: The mixed tenant load: alternating non-numerical and numerical
#: kernels, sized so one request costs milliseconds, not seconds.
MIX = (
    ("qsort", {"n": 1500}),
    ("jacobi", {"n": 24, "iterations": 30}),
)


def _post(url: str, doc: dict, timeout: float = 120.0) -> dict:
    body = json.dumps(doc).encode()
    request = urllib.request.Request(
        url + "/v1/run", data=body,
        headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(request, timeout=timeout) as handle:
            return json.loads(handle.read().decode())
    except urllib.error.HTTPError as error:
        return json.loads(error.read().decode())


def _run_phase(server, *, clients: int, requests: int,
               chaos: bool = False) -> dict:
    """Closed-loop client threads against the server's front door."""
    url = server.url
    counter = {"next": 0}
    lock = threading.Lock()
    responses: list[dict] = []
    kill_at = requests // 4 if chaos else None
    killed = {"done": False}

    def loop():
        while True:
            with lock:
                index = counter["next"]
                if index >= requests:
                    return
                counter["next"] = index + 1
            app, overrides = MIX[index % len(MIX)]
            response = _post(url, {"app": app, "threads": 1,
                                   "overrides": overrides})
            with lock:
                responses.append(response)
                if kill_at is not None and not killed["done"] \
                        and len(responses) >= kill_at:
                    killed["done"] = True
                    pids = server.fleet.pids()
                    victim = next(iter(sorted(pids)))
                    server.fleet.kill_worker(victim)

    begin = time.perf_counter()
    threads = [threading.Thread(target=loop) for _ in range(clients)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - begin
    ok = [r for r in responses if r.get("ok")]
    busy = [r["busy_cpu_s"] for r in ok if r.get("busy_cpu_s")]
    mean_busy = sum(busy) / len(busy) if busy else None
    return {"requests": len(responses), "ok": len(ok),
            "errors": len(responses) - len(ok),
            "elapsed_s": elapsed,
            "measured_rps": len(ok) / elapsed if elapsed else 0.0,
            "mean_busy_cpu_s": mean_busy,
            "killed_worker": bool(chaos and killed["done"])}


def _make_server(workers: int, queue: int):
    from repro.serve.server import ServeServer
    server = ServeServer(workers=workers, queue_capacity=queue,
                         max_batch=4,
                         tenants={"default": max(2, workers)},
                         job_timeout=60.0)
    server.start()
    return server


def run_bench(*, workers: int = 4, clients: int = 8,
              requests: int = 80, baseline_requests: int | None = None,
              chaos: bool = False) -> dict:
    """Run the baseline and fleet phases; return the result payload."""
    from repro.serve.shm import leaked_segments

    baseline_requests = baseline_requests or max(10, requests // 4)
    print(f"[serve-bench] baseline: 1 worker, 1 client, "
          f"{baseline_requests} requests", flush=True)
    server = _make_server(1, max(4, clients))
    try:
        baseline = _run_phase(server, clients=1,
                              requests=baseline_requests)
    finally:
        server.stop()
    if baseline["errors"]:
        raise RuntimeError(
            f"baseline phase had {baseline['errors']} errors")
    print(f"[serve-bench] baseline: "
          f"{baseline['measured_rps']:.1f} req/s", flush=True)

    print(f"[serve-bench] fleet: {workers} workers, {clients} clients, "
          f"{requests} requests" + (" (chaos)" if chaos else ""),
          flush=True)
    server = _make_server(workers, max(2 * clients, 16))
    try:
        fleet = _run_phase(server, clients=clients, requests=requests,
                           chaos=chaos)
        stats = server.stats.snapshot()
        restarts = server.fleet.restarts_total
    finally:
        server.stop()
    leaked = leaked_segments()

    capacity_rps = (workers / fleet["mean_busy_cpu_s"]
                    if fleet["mean_busy_cpu_s"] else 0.0)
    scale = (capacity_rps / baseline["measured_rps"]
             if baseline["measured_rps"] else 0.0)
    result = {"workers": workers, "clients": clients,
              "baseline": baseline, "fleet": fleet,
              "capacity_rps": capacity_rps, "scale": scale,
              "p99_s": stats.get("p99_s"), "p50_s": stats.get("p50_s"),
              "shed": stats.get("shed"),
              "retries": stats.get("retries"),
              "worker_restarts": restarts,
              "leaked_segments": leaked}
    print(f"[serve-bench] fleet: {fleet['measured_rps']:.1f} req/s "
          f"measured, {capacity_rps:.1f} req/s capacity "
          f"({workers} workers / {fleet['mean_busy_cpu_s']:.4f}s mean "
          f"kernel CPU), scale {scale:.1f}x vs baseline, "
          f"p99 {stats.get('p99_s'):.3f}s, shed {stats.get('shed')}, "
          f"retries {stats.get('retries')}, restarts {restarts}",
          flush=True)
    return result


def check_result(result: dict, *, min_scale: float,
                 max_p99: float) -> list[str]:
    """The CI gate: scaling, bounded p99, zero shed/errors/leaks."""
    failures = []
    if result["scale"] < min_scale:
        failures.append(
            f"serve: capacity scale {result['scale']:.2f}x below the "
            f"{min_scale:.1f}x gate")
    if result["p99_s"] is None or result["p99_s"] > max_p99:
        failures.append(
            f"serve: p99 {result['p99_s']}s above the {max_p99}s bound")
    if result["fleet"]["errors"]:
        failures.append(
            f"serve: {result['fleet']['errors']} failed requests")
    if result["shed"]:
        failures.append(
            f"serve: {result['shed']} requests shed at this low load")
    if result["leaked_segments"]:
        failures.append(
            f"serve: leaked segments {result['leaked_segments']}")
    if result["fleet"]["killed_worker"] and not result["worker_restarts"]:
        failures.append("serve: chaos kill produced no worker restart")
    return failures


def to_records(result: dict) -> list[dict]:
    """BENCH_smoke.json records (wall_s = seconds per request)."""
    baseline = result["baseline"]
    fleet = result["fleet"]
    return [
        {"kernel": "serve/baseline",
         "wall_s": (1.0 / baseline["measured_rps"]
                    if baseline["measured_rps"] else 0.0),
         "threads": 1, "mode": "pure", "workers": 1,
         "rps": baseline["measured_rps"]},
        {"kernel": "serve/mixed",
         "wall_s": (1.0 / fleet["measured_rps"]
                    if fleet["measured_rps"] else 0.0),
         "threads": 1, "mode": "pure",
         "workers": result["workers"],
         "clients": result["clients"],
         "rps": fleet["measured_rps"],
         "capacity_rps": result["capacity_rps"],
         "scale": result["scale"],
         "p99_s": result["p99_s"],
         "shed": result["shed"],
         "worker_restarts": result["worker_restarts"]},
    ]


def smoke_records(workers: int = 2, clients: int = 4,
                  requests: int = 24) -> tuple[list[str], list[dict]]:
    """Entry point for ``reproduce.py --smoke``: a small fleet pass.

    The smoke gate is correctness plus a conservative scaling floor
    (half the worker count); the full 4x-at-4-workers gate runs in the
    dedicated CI ``serve-smoke`` job.
    """
    result = run_bench(workers=workers, clients=clients,
                       requests=requests, baseline_requests=10)
    failures = check_result(result, min_scale=workers / 2.0,
                            max_p99=10.0)
    return failures, to_records(result)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--requests", type=int, default=80)
    parser.add_argument("--check", action="store_true",
                        help="exit 1 when a gate fails")
    parser.add_argument("--min-scale", type=float, default=4.0,
                        help="required capacity scale vs the 1-worker "
                             "baseline (default 4.0)")
    parser.add_argument("--max-p99", type=float, default=2.0,
                        help="p99 latency bound in seconds")
    parser.add_argument("--chaos", action="store_true",
                        help="kill one worker mid-run and require "
                             "zero lost requests and zero shm leaks")
    parser.add_argument("--out", default=None, metavar="DIR",
                        help="write BENCH_serving.json here")
    args = parser.parse_args(argv)

    result = run_bench(workers=args.workers, clients=args.clients,
                       requests=args.requests, chaos=args.chaos)
    failures = check_result(result, min_scale=args.min_scale,
                            max_p99=args.max_p99)
    if args.out:
        import platform

        from repro.runtime.gilstate import current_backend
        out_dir = pathlib.Path(args.out)
        out_dir.mkdir(parents=True, exist_ok=True)
        records = to_records(result)
        payload_path = out_dir / "BENCH_serving.json"
        payload = {"schema": "omp4py-bench-smoke/1",
                   "python": platform.python_version(),
                   "platform": platform.platform(),
                   "backend": current_backend().value,
                   "total_wall_s": sum(r["wall_s"] for r in records),
                   "kernels": records,
                   "serving": result}
        payload_path.write_text(json.dumps(payload, indent=2) + "\n",
                                encoding="utf-8")
        print(f"[serve-bench] wrote {payload_path}")
    for failure in failures:
        print(f"[serve-bench] FAIL: {failure}")
    if args.check and failures:
        return 1
    print("[serve-bench] " + ("FAILED" if failures else "OK"))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
