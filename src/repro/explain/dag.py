"""Causal DAG reconstruction and critical-path computation.

The trace layer (:mod:`repro.runtime.trace`) records a timestamped
event per runtime transition.  This module turns one recording into a
weighted DAG and computes its longest path — the *critical path*, the
chain of compute intervals and causal hand-offs no amount of extra
threads could shorten.

Two edge families:

* **Program order** — consecutive events of one thread.  The edge
  weight is the elapsed time, except across wait intervals (barrier
  enter→release, taskwait enter→release, the implicit join, a
  contended mutex acquire, an ordered-clause wait), which weigh zero:
  waiting never lengthens the critical path by itself — whatever the
  thread waited *for* does.
* **Causal** — cross-thread edges carrying the wait's cause: region
  fork → member implicit task, the highest-cost barrier arrival →
  every release of that barrier instance, task submit → task start,
  child task finishes → the parent's taskwait release (and the
  region's barrier releases, which drain tasks), and mutex release →
  the next contended acquire of the same handle.  A causal edge weighs
  the real elapsed time between its endpoints — spawn latency, wakeup
  latency, and the stall a chain suffers when *it* is the one held up
  all land on the path, attributed to the wait category.

Because every edge ``i → j`` weighs at most ``ts_j − ts_i`` and points
forward in time, the critical-path length is bounded by the trace
span — and approaches it when one chain's compute and hand-offs cover
the whole recording.

``free_mutexes`` reruns the computation pretending a set of mutex
handles never blocked — the "what-if this lock were free" estimate.
What-if comparisons should pass ``causal_elapsed=False`` to both runs:
the zero-weight causal DAG measures pure dependency-chain length (what
a perfect schedule could achieve), which is the quantity a removed
lock actually shortens — the elapsed-weighted path would just re-read
the recorded timeline, stalls included.
"""

from __future__ import annotations

import dataclasses
from collections import Counter, defaultdict, deque

#: Event kinds that open a wait interval on their thread: every
#: program-order edge leaving them is time spent waiting (or helping
#: with tasks, which re-enters via task events), never compute.
_WAIT_SOURCES = {
    "barrier_enter": "barrier_wait",
    "taskwait_enter": "taskwait",
    "join_enter": "join_wait",
}

#: Event kinds that close a wait interval: the residual edge into them
#: (after any interleaved task execution) is wait, never compute.
_WAIT_TARGETS = {
    "barrier_release": "barrier_wait",
    "taskwait_release": "taskwait",
    "itask_end": "join_wait",
}


@dataclasses.dataclass(frozen=True)
class PathStep:
    """One interval of the critical path."""

    start: float
    end: float
    thread: int
    category: str
    site: tuple | None = None

    @property
    def elapsed(self) -> float:
        return self.end - self.start


@dataclasses.dataclass
class DagAnalysis:
    """The DAG builder's output: critical path plus whole-trace
    aggregates (the raw material of the bottleneck taxonomy)."""

    events_count: int = 0
    dropped: int = 0
    span_s: float = 0.0
    critical_path_s: float = 0.0
    #: Merged intervals along the critical path, in time order.
    steps: list = dataclasses.field(default_factory=list)
    #: Seconds of the critical path per category (waits measured by
    #: the elapsed span of their zero-weight steps).
    path_breakdown: dict = dataclasses.field(default_factory=dict)
    threads: list = dataclasses.field(default_factory=list)
    #: Program-order compute seconds per thread.
    compute_by_thread: dict = dataclasses.field(default_factory=dict)
    #: Aggregate wait totals (thread-seconds) across the whole trace.
    barrier_wait_s: float = 0.0
    join_wait_s: float = 0.0
    taskwait_s: float = 0.0
    ordered_wait_s: float = 0.0
    #: (kind, handle) -> {"wait_s", "count", "contended", "site"}.
    mutexes: dict = dataclasses.field(default_factory=dict)
    #: barrier site -> {"wait_s", "count", "spread_s"} (spread is the
    #: summed fastest-vs-slowest arrival gap per barrier instance).
    barrier_sites: dict = dataclasses.field(default_factory=dict)
    #: ordered-clause site -> {"wait_s", "count"}.
    ordered_sites: dict = dataclasses.field(default_factory=dict)
    #: region id -> {"size", "begin", "end", "site"}.
    regions: dict = dataclasses.field(default_factory=dict)
    #: Span seconds outside every parallel region (serial fraction).
    serial_s: float = 0.0
    tasks_submitted: int = 0
    tasks_started: int = 0
    steals_by_thread: dict = dataclasses.field(default_factory=dict)
    #: plan source (map name) -> {"executions", "partitions",
    #: "colors", "conflict_edges", "site"} from ``plan_execute``
    #: events (:mod:`repro.plan`): evidence that updates ran under an
    #: inspector–executor plan instead of locks.
    plans: dict = dataclasses.field(default_factory=dict)

    @property
    def serial_fraction(self) -> float:
        return self.serial_s / self.span_s if self.span_s > 0 else 0.0


def _classify_edge(prev, cur, dt: float) -> tuple[float, str]:
    """Weight and category of the program-order edge ``prev -> cur``."""
    source_wait = _WAIT_SOURCES.get(prev.kind)
    if source_wait is not None:
        return 0.0, source_wait
    target_wait = _WAIT_TARGETS.get(cur.kind)
    if target_wait is not None:
        return 0.0, target_wait
    if cur.kind == "itask_begin":
        # A pool worker parked between regions, or the master's fork
        # overhead: neither is user compute.
        return 0.0, "idle"
    if cur.kind == "mutex_acquired":
        wait = cur.detail[2] if len(cur.detail) >= 3 else 0.0
        return max(0.0, dt - wait), "compute"
    if cur.kind == "ordered_wait":
        wait = cur.detail[0] if cur.detail else 0.0
        return max(0.0, dt - wait), "compute"
    if prev.kind == "region_join":
        return dt, "serial"
    return dt, "compute"


def _site_of(detail: tuple, offset: int) -> tuple | None:
    """``(file, line)`` from a detail tuple, when recorded."""
    if len(detail) >= offset + 2 and detail[offset]:
        return (detail[offset], detail[offset + 1])
    return None


def build_dag(events, *, free_mutexes=frozenset(),
              causal_elapsed: bool = True) -> DagAnalysis:
    """Build the causal DAG over ``events`` and compute its critical
    path and whole-trace aggregates.

    ``events`` is any iterable of :class:`~repro.runtime.trace.
    TraceEvent`; a :class:`~repro.runtime.trace.TraceLog` also supplies
    the dropped count.  ``free_mutexes`` is a set of ``(kind, handle)``
    pairs whose waits are elided — both the causal release→acquire
    edges and the wait portions of aggregate totals — for what-if
    estimates.  ``causal_elapsed=False`` switches causal edges to
    weight zero (the optimistic dependency-length DAG used by what-if
    comparisons).
    """
    analysis = DagAnalysis(dropped=getattr(events, "dropped", 0))
    evs = sorted(events, key=lambda e: e.timestamp)
    analysis.events_count = len(evs)
    if not evs:
        return analysis
    analysis.span_s = evs[-1].timestamp - evs[0].timestamp

    n = len(evs)
    dp = [0.0] * n
    # Backpointer per event: (source index | None, weight, category,
    # site) of the edge that realized dp.
    pred: list[tuple | None] = [None] * n

    last_on_thread: dict[int, int] = {}
    fork_by_region: dict[int, int] = {}
    open_regions: list[int] = []
    barrier_enter_ord: Counter = Counter()
    barrier_release_ord: Counter = Counter()
    barrier_arrivals: dict[tuple, tuple] = {}   # instance -> (dp, idx)
    barrier_enter_ts: defaultdict[tuple, list] = defaultdict(list)
    barrier_site_by_instance: dict[tuple, tuple | None] = {}
    join_arrivals: dict[int, tuple] = {}        # region -> (dp, idx)
    join_enter_ts: dict[tuple, float] = {}      # (region, thread) -> ts
    itask_ends: dict[int, tuple] = {}           # region -> (dp, idx)
    submit_queue: defaultdict = defaultdict(deque)  # task id -> deque
    exec_stack: defaultdict[int, list] = defaultdict(list)
    children_max: dict[int, tuple] = {}         # parent -> (dp, idx)
    region_task_max: dict[int, tuple] = {}      # region -> (dp, idx)
    mutex_release: dict[tuple, tuple] = {}      # handle -> (dp, idx)

    compute_by_thread: defaultdict[int, float] = defaultdict(float)
    steals: Counter = Counter()

    def raise_group(table: dict, key, value: float, index: int) -> None:
        entry = table.get(key)
        if entry is None or value > entry[0]:
            table[key] = (value, index)

    for i, event in enumerate(evs):
        kind = event.kind
        detail = event.detail
        best = 0.0
        best_pred: tuple | None = None

        prev_i = last_on_thread.get(event.thread)
        if prev_i is not None:
            prev = evs[prev_i]
            dt = event.timestamp - prev.timestamp
            weight, category = _classify_edge(prev, event, dt)
            if weight > 0.0:
                compute_by_thread[event.thread] += weight
            score = dp[prev_i] + weight
            if score >= best:
                best = score
                best_pred = (prev_i, weight, category, None)

        def offer(entry: tuple | None, category: str,
                  site: tuple | None = None) -> None:
            nonlocal best, best_pred
            if entry is None:
                return
            value, index = entry
            delta = max(0.0, event.timestamp - evs[index].timestamp) \
                if causal_elapsed else 0.0
            if value + delta > best:
                best = value + delta
                best_pred = (index, delta, category, site)

        if kind == "itask_begin":
            region = detail[0] if detail else 0
            fork = fork_by_region.get(region)
            if fork is not None:
                offer((dp[fork], fork), "fork")
        elif kind == "barrier_release":
            region = detail[1] if len(detail) >= 2 else 0
            ordinal = barrier_release_ord[(region, event.thread)]
            barrier_release_ord[(region, event.thread)] += 1
            offer(barrier_arrivals.get((region, ordinal)),
                  "barrier_wait",
                  barrier_site_by_instance.get((region, ordinal)))
            # A barrier is a task-scheduling point: it cannot release
            # before the team's tasks drained.
            offer(region_task_max.get(region), "barrier_wait")
        elif kind == "itask_end":
            region = detail[0] if detail else 0
            offer(join_arrivals.get(region), "join_wait")
            offer(region_task_max.get(region), "join_wait")
        elif kind == "region_join":
            region = detail[1] if len(detail) >= 2 else 0
            offer(itask_ends.get(region), "join_wait")
        elif kind == "task_start":
            task = detail[0] if detail else None
            queue = submit_queue.get(task)
            if queue:
                submit_i, parent = queue.popleft()
                offer((dp[submit_i], submit_i), "task_spawn")
            else:
                parent = 0
            exec_stack[event.thread].append((task, parent))
        elif kind == "taskwait_release":
            parent = detail[1] if len(detail) >= 2 else 0
            offer(children_max.get(parent), "taskwait")
        elif kind == "mutex_acquired":
            handle = tuple(detail[:2])
            wait = detail[2] if len(detail) >= 3 else 0.0
            if wait > 0.0 and handle not in free_mutexes:
                offer(mutex_release.get(handle), "mutex_wait",
                      _site_of(detail, 3))

        dp[i] = best
        pred[i] = best_pred
        last_on_thread[event.thread] = i

        # Group-state updates that must see this event's dp.
        if kind == "region_fork":
            region = detail[1] if len(detail) >= 2 else 0
            fork_by_region[region] = i
            open_regions.append(region)
            analysis.regions[region] = {
                "size": detail[0] if detail else 1,
                "begin": event.timestamp, "end": None,
                "site": _site_of(detail, 2),
            }
        elif kind == "region_join":
            region = detail[1] if len(detail) >= 2 else 0
            if region in open_regions:
                open_regions.remove(region)
            meta = analysis.regions.get(region)
            if meta is not None:
                meta["end"] = event.timestamp
        elif kind == "barrier_enter":
            region = detail[0] if detail else 0
            ordinal = barrier_enter_ord[(region, event.thread)]
            barrier_enter_ord[(region, event.thread)] += 1
            instance = (region, ordinal)
            raise_group(barrier_arrivals, instance, dp[i], i)
            barrier_enter_ts[instance].append(event.timestamp)
            site = _site_of(detail, 1)
            if site is not None:
                barrier_site_by_instance.setdefault(instance, site)
        elif kind == "barrier_release":
            wait = detail[0] if detail else 0.0
            if isinstance(wait, (int, float)):
                analysis.barrier_wait_s += wait
        elif kind == "join_enter":
            region = detail[0] if detail else 0
            raise_group(join_arrivals, region, dp[i], i)
            join_enter_ts[(region, event.thread)] = event.timestamp
        elif kind == "itask_end":
            region = detail[0] if detail else 0
            raise_group(itask_ends, region, dp[i], i)
            entered = join_enter_ts.pop((region, event.thread), None)
            if entered is not None:
                analysis.join_wait_s += max(
                    0.0, event.timestamp - entered)
        elif kind == "task_submit":
            parent = detail[1] if len(detail) >= 2 else 0
            submit_queue[detail[0] if detail else None].append(
                (i, parent))
            analysis.tasks_submitted += 1
        elif kind == "task_start":
            analysis.tasks_started += 1
        elif kind == "task_finish":
            stack = exec_stack[event.thread]
            parent = stack.pop()[1] if stack else 0
            raise_group(children_max, parent, dp[i], i)
            region = open_regions[-1] if open_regions else 0
            raise_group(region_task_max, region, dp[i], i)
        elif kind == "task_steal":
            steals[event.thread] += 1
        elif kind == "taskwait_release":
            wait = detail[0] if detail else 0.0
            if isinstance(wait, (int, float)):
                analysis.taskwait_s += wait
        elif kind == "mutex_acquired":
            handle = tuple(detail[:2])
            wait = detail[2] if len(detail) >= 3 else 0.0
            if handle in free_mutexes:
                wait = 0.0
            entry = analysis.mutexes.setdefault(
                handle, {"wait_s": 0.0, "count": 0, "contended": 0,
                         "site": None})
            entry["count"] += 1
            if isinstance(wait, (int, float)) and wait > 0.0:
                entry["wait_s"] += wait
                entry["contended"] += 1
            if entry["site"] is None:
                entry["site"] = _site_of(detail, 3)
        elif kind == "mutex_released":
            raise_group(mutex_release, tuple(detail[:2]), dp[i], i)
        elif kind == "ordered_wait":
            wait = detail[0] if detail else 0.0
            site = _site_of(detail, 1)
            if isinstance(wait, (int, float)):
                analysis.ordered_wait_s += wait
                entry = analysis.ordered_sites.setdefault(
                    site, {"wait_s": 0.0, "count": 0})
                entry["wait_s"] += wait
                entry["count"] += 1
        elif kind == "plan_execute":
            source = detail[0] if detail else "?"
            entry = analysis.plans.setdefault(
                source, {"executions": 0, "partitions": 0, "colors": 0,
                         "conflict_edges": 0, "site": None})
            entry["executions"] += 1
            if len(detail) >= 4:
                entry["partitions"] = detail[1]
                entry["colors"] = detail[2]
                entry["conflict_edges"] = detail[3]
            if entry["site"] is None:
                entry["site"] = _site_of(detail, 4)

    # Barrier-site aggregates: total arrival spread (slowest minus
    # fastest arrival) and summed release waits per enter site.
    for instance, stamps in barrier_enter_ts.items():
        site = barrier_site_by_instance.get(instance)
        entry = analysis.barrier_sites.setdefault(
            site, {"wait_s": 0.0, "count": 0, "spread_s": 0.0})
        entry["count"] += 1
        if len(stamps) > 1:
            entry["spread_s"] += max(stamps) - min(stamps)
    total_site_wait = sum(
        e["spread_s"] for e in analysis.barrier_sites.values())
    if total_site_wait > 0:
        for entry in analysis.barrier_sites.values():
            entry["wait_s"] = analysis.barrier_wait_s * (
                entry["spread_s"] / total_site_wait)
    elif analysis.barrier_sites:
        share = analysis.barrier_wait_s / len(analysis.barrier_sites)
        for entry in analysis.barrier_sites.values():
            entry["wait_s"] = share

    # Serial fraction: span minus the union of region spans.
    intervals = sorted(
        (meta["begin"], meta["end"] if meta["end"] is not None
         else evs[-1].timestamp)
        for meta in analysis.regions.values())
    covered = 0.0
    cursor = None
    for begin, end in intervals:
        if cursor is None or begin > cursor:
            covered += end - begin
            cursor = end
        elif end > cursor:
            covered += end - cursor
            cursor = end
    analysis.serial_s = max(0.0, analysis.span_s - covered)

    analysis.threads = sorted({event.thread for event in evs})
    analysis.compute_by_thread = dict(compute_by_thread)
    analysis.steals_by_thread = dict(steals)

    # Critical path: backtrack from the best endpoint.
    end_i = max(range(n), key=dp.__getitem__)
    analysis.critical_path_s = dp[end_i]
    raw_steps: list[PathStep] = []
    i = end_i
    while pred[i] is not None:
        source, weight, category, site = pred[i]
        raw_steps.append(PathStep(
            start=evs[source].timestamp, end=evs[i].timestamp,
            thread=evs[i].thread, category=category, site=site))
        i = source
    raw_steps.reverse()

    merged: list[PathStep] = []
    for step in raw_steps:
        if merged and merged[-1].category == step.category \
                and merged[-1].thread == step.thread \
                and merged[-1].site == step.site:
            merged[-1] = dataclasses.replace(merged[-1], end=step.end)
        else:
            merged.append(step)
    analysis.steps = merged

    breakdown: defaultdict[str, float] = defaultdict(float)
    for step in raw_steps:
        breakdown[step.category] += step.elapsed
    analysis.path_breakdown = dict(breakdown)
    return analysis


def summarize(analysis: DagAnalysis, *, top: int = 8) -> dict:
    """JSON-safe condensation of a :class:`DagAnalysis` (used by the
    report writer and the live ``/explain`` endpoint)."""
    from repro.diagnostics.origin import format_location

    def site_str(site) -> str | None:
        if not site:
            return None
        return format_location(site[0], site[1])

    mutexes = sorted(analysis.mutexes.items(),
                     key=lambda item: item[1]["wait_s"], reverse=True)
    return {
        "events": analysis.events_count,
        "dropped": analysis.dropped,
        "span_s": analysis.span_s,
        "critical_path_s": analysis.critical_path_s,
        "path_breakdown_s": dict(sorted(
            analysis.path_breakdown.items(),
            key=lambda item: item[1], reverse=True)),
        "threads": analysis.threads,
        "serial_s": analysis.serial_s,
        "serial_fraction": analysis.serial_fraction,
        "waits_s": {
            "barrier": analysis.barrier_wait_s,
            "join": analysis.join_wait_s,
            "taskwait": analysis.taskwait_s,
            "ordered": analysis.ordered_wait_s,
            "mutex": sum(m["wait_s"] for m in analysis.mutexes.values()),
        },
        "mutexes": [
            {"kind": handle[0] if handle else None,
             "handle": str(handle[1]) if len(handle) > 1 else None,
             "wait_s": entry["wait_s"], "count": entry["count"],
             "contended": entry["contended"],
             "site": site_str(entry["site"])}
            for handle, entry in mutexes[:top]],
        "regions": len(analysis.regions),
        "plans": {
            source: {"executions": entry["executions"],
                     "partitions": entry["partitions"],
                     "colors": entry["colors"],
                     "conflict_edges": entry["conflict_edges"],
                     "site": site_str(entry["site"])}
            for source, entry in sorted(analysis.plans.items())},
        "tasks": {"submitted": analysis.tasks_submitted,
                  "started": analysis.tasks_started,
                  "steals": {str(t): c for t, c in sorted(
                      analysis.steals_by_thread.items())}},
        "critical_steps": [
            {"category": step.category, "thread": step.thread,
             "elapsed_s": step.elapsed, "site": site_str(step.site)}
            for step in analysis.steps[:top]],
    }
