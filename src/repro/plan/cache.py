"""Plan cache keyed by ``(map, partition size)``.

Inspection is the expensive half of inspector–executor: for a
timestepped app (md runs the same pair map every step) the conflict
graph and coloring must be computed once and reused.  The cache is
weak-keyed on the :class:`~repro.plan.map.Map` object — when the
application drops its map, the plans built for it go too (plans never
hold a reference back to their map, see ``planner.Plan``), so the
cache cannot leak retired iteration spaces.

Cache traffic (builds and hits) is reported through the OMPT tool
``plan`` callback when a runtime with an attached tool is passed in,
which is how ``omp_plan_cache_hits_total`` reaches the metrics
registry.
"""

from __future__ import annotations

import threading
import weakref

from repro.plan.planner import build_plan

_lock = threading.Lock()
_plans: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()
_stats = {"builds": 0, "hits": 0}


def plan_for(indirection_map, partition_size: int, *, runtime=None):
    """The cached plan for ``(map, partition_size)``, building it on
    first use.  Thread-safe; the inspector runs under the cache lock so
    concurrent first calls build once."""
    with _lock:
        per_size = _plans.get(indirection_map)
        if per_size is None:
            _plans[indirection_map] = per_size = {}
        plan = per_size.get(partition_size)
        if plan is not None:
            _stats["hits"] += 1
            hit = True
        else:
            plan = build_plan(indirection_map, partition_size)
            per_size[partition_size] = plan
            _stats["builds"] += 1
            hit = False
    _notify(runtime, plan, hit)
    return plan


def _notify(runtime, plan, hit: bool) -> None:
    if runtime is None:
        return
    tool = runtime.tool
    if tool is None:
        return
    tool.plan(runtime.get_thread_num(),
              "cache_hit" if hit else "build",
              {"source": plan.source,
               "partition_size": plan.partition_size,
               "partitions": plan.npartitions,
               "colors": plan.ncolors,
               "conflict_edges": plan.conflict_edges})


def plan_cache_stats() -> dict:
    """A snapshot of cache counters plus live entry counts."""
    with _lock:
        entries = sum(len(per_size) for per_size in _plans.values())
        return {"builds": _stats["builds"], "hits": _stats["hits"],
                "maps": len(_plans), "plans": entries}


def clear_plan_cache() -> None:
    """Drop every cached plan and reset counters (tests)."""
    with _lock:
        _plans.clear()
        _stats["builds"] = 0
        _stats["hits"] = 0
