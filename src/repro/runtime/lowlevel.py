"""Low-level primitives of the pure-Python runtime.

This module defines the *interface* that separates the shared runtime
logic from the primitives that differ between the two runtimes — the
Python analogue of the paper's ``.pxd`` declaration files.  The pure
implementation coordinates through mutexes (``threading.Lock``); the
native simulation in :mod:`repro.cruntime.lowlevel` substitutes atomic
operations, exactly the split the paper describes for dynamic-schedule
counters, task deques, and shared-slot creation.

Interface (duck-typed, no ABC overhead on hot paths):

* ``make_mutex()`` / ``make_event()`` — basic primitives.
* ``make_counter(initial)`` — object with ``load``, ``store``,
  ``fetch_add(delta) -> old`` and ``compare_exchange(expected, desired)
  -> bool``.
* ``make_deque()`` — a work-stealing deque with ``push(node)`` (owner),
  ``pop() -> node | None`` (owner, LIFO), ``steal() -> node | None``
  (any thread, FIFO) and an advisory ``__bool__`` (see
  :mod:`repro.runtime.tasking`).  Deques may hand the same node to an
  owner and a thief under races; the task-state ``claim()`` CAS is the
  execution gate, so the only hard guarantee a deque must provide is
  that no pushed node is *lost*.
* ``slot_get_or_create(table, lock, key, factory)`` — shared-slot
  creation for worksharing constructs.
"""

from __future__ import annotations

import threading
from collections import deque


class MutexCounter:
    """Shared counter protected by a mutex (the pure runtime's choice).

    Same operation set as :class:`repro.atomics.AtomicLong`, so the
    scheduler and tasking logic are written once against this interface.
    """

    __slots__ = ("_value", "_lock")

    def __init__(self, value: int = 0):
        self._value = value
        self._lock = threading.Lock()

    def load(self) -> int:
        return self._value

    def store(self, value: int) -> None:
        with self._lock:
            self._value = value

    def fetch_add(self, delta: int = 1) -> int:
        with self._lock:
            old = self._value
            self._value = old + delta
            return old

    def compare_exchange(self, expected: int, desired: int) -> bool:
        with self._lock:
            if self._value == expected:
                self._value = desired
                return True
            return False


class MutexDeque:
    """Work-stealing deque serialised by a mutex (the pure runtime).

    The owner pushes and pops at the right end (LIFO, the recursive
    decomposition order qsort/bfs want); thieves take from the left end
    (FIFO, the oldest — typically largest — subproblem).
    """

    __slots__ = ("_items", "_lock")

    def __init__(self):
        self._items = deque()
        self._lock = threading.Lock()

    def push(self, node) -> None:
        with self._lock:
            self._items.append(node)

    def pop(self):
        with self._lock:
            return self._items.pop() if self._items else None

    def steal(self):
        with self._lock:
            return self._items.popleft() if self._items else None

    def __bool__(self) -> bool:
        # Advisory: racy readers only use this to decide whether another
        # claim attempt is worth making before sleeping.
        return bool(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def snapshot(self) -> list:
        """Advisory copy of the queued nodes, oldest (steal end) first —
        read by the stall watchdog to show unclaimed work; never part of
        the owner/thief protocol."""
        with self._lock:
            return list(self._items)


class PureLowLevel:
    """Mutex-based primitives for the pure-Python ``runtime``."""

    name = "runtime"

    @staticmethod
    def make_mutex():
        return threading.Lock()

    @staticmethod
    def make_event():
        return threading.Event()

    @staticmethod
    def make_counter(initial: int = 0):
        return MutexCounter(initial)

    @staticmethod
    def make_deque():
        return MutexDeque()

    @staticmethod
    def slot_get_or_create(table: dict, lock, key, factory):
        """First arrival creates the shared slot, under the table lock."""
        slot = table.get(key)
        if slot is not None:
            return slot
        with lock:
            slot = table.get(key)
            if slot is None:
                slot = factory()
                table[key] = slot
            return slot
