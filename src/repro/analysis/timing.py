"""Timing with the free-threaded-interpreter projection.

``measure`` runs a transformed kernel, recording both the measured wall
time and the projected no-GIL wall time derived from per-thread CPU
accounting (see :mod:`repro.runtime.stats` and DESIGN.md).  On the
paper's hardware the projection equals the measurement; under a GIL it
recovers the quantity the paper's figures plot.
"""

from __future__ import annotations

import dataclasses
import statistics
import sys
import time

from repro.decorator import runtime_for
from repro.modes import Mode


@dataclasses.dataclass
class Measurement:
    """One timed kernel execution (or the mean of several)."""

    wall: float
    projected: float
    serialized_cpu: float
    critical_cpu: float
    regions: int
    value: object = None
    #: CPU-weighted load imbalance over the recorded regions
    #: (max over mean per-thread CPU time; 1.0 = perfectly balanced).
    imbalance: float = 1.0

    @property
    def parallel_fraction(self) -> float:
        """Fraction of the wall time spent inside parallel regions."""
        return min(1.0, self.serialized_cpu / self.wall) if self.wall \
            else 0.0


def _runtime_of(fn, runtime):
    if runtime is not None:
        return runtime
    mode = getattr(fn, "__omp_mode__", None)
    return runtime_for(mode if mode is not None else Mode.HYBRID)


def measure(fn, /, *args, runtime=None, repeats: int = 1,
            make_args=None, **kwargs) -> Measurement:
    """Run ``fn`` ``repeats`` times; return mean wall/projection.

    ``make_args`` (when given) is called before every repetition and
    must return ``(args, kwargs)`` — needed for kernels that mutate
    their inputs (lu, qsort, md, ...).
    """
    rt = _runtime_of(fn, runtime)
    walls: list[float] = []
    projections: list[float] = []
    serialized_total = 0.0
    critical_total = 0.0
    regions_total = 0
    mean_cpu_total = 0.0
    value = None
    # Finer-grained GIL switching reduces measurement noise from thread
    # scheduling granularity; restored afterwards.
    old_interval = sys.getswitchinterval()
    sys.setswitchinterval(0.0005)
    try:
        for _repeat in range(repeats):
            if make_args is not None:
                call_args, call_kwargs = make_args()
            else:
                call_args, call_kwargs = args, kwargs
            rt.stats.reset()
            begin = time.perf_counter()
            value = fn(*call_args, **call_kwargs)
            wall = time.perf_counter() - begin
            serialized, critical, regions = rt.stats.totals()
            walls.append(wall)
            projections.append(rt.stats.project(wall))
            serialized_total += serialized
            critical_total += critical
            regions_total += regions
            mean_cpu_total += sum(r.mean_cpu for r in rt.stats.snapshot())
    finally:
        sys.setswitchinterval(old_interval)
    count = max(1, repeats)
    # Aggregate imbalance: total critical-path CPU over the total of
    # per-region mean CPU — a CPU-weighted average of per-region
    # max/mean ratios.
    imbalance = critical_total / mean_cpu_total if mean_cpu_total > 0 \
        else 1.0
    return Measurement(
        wall=statistics.fmean(walls),
        projected=statistics.fmean(projections),
        serialized_cpu=serialized_total / count,
        critical_cpu=critical_total / count,
        regions=regions_total // count,
        value=value,
        imbalance=imbalance)


def measure_mpi(launch, nodes: int, /, *args, runtime=None,
                repeats: int = 1, **kwargs) -> Measurement:
    """Measure a hybrid MPI/OpenMP launch.

    Rank regions execute concurrently across "nodes", so the cluster
    projection divides the single-interpreter projection by the node
    count — the uniform-concurrency model documented in DESIGN.md
    (per-rank imbalance is already inside the per-region maxima).
    """
    from repro.cruntime import cruntime
    from repro.runtime import pure_runtime
    runtimes = [runtime] if runtime is not None else [pure_runtime,
                                                      cruntime]
    walls: list[float] = []
    projections: list[float] = []
    value = None
    for _repeat in range(repeats):
        for rt in runtimes:
            rt.stats.reset()
        begin = time.perf_counter()
        value = launch(*args, **kwargs)
        wall = time.perf_counter() - begin
        projected = min(rt.stats.project(wall) for rt in runtimes)
        walls.append(wall)
        projections.append(projected / nodes)
    return Measurement(
        wall=statistics.fmean(walls),
        projected=statistics.fmean(projections),
        serialized_cpu=0.0, critical_cpu=0.0, regions=0, value=value)
