"""Full evaluation driver: regenerate every table and figure.

Runs the report harness for Table I and Figs. 5-8 plus the headline
summary, writing each into ``results/``.  Problem sizes and thread
counts default to laptop-scale values; ``--profile paper --threads
1,2,4,8,16,32`` reproduces the paper's configuration (expect many
hours, as the paper's artifact appendix also warns).

Usage::

    python benchmarks/reproduce.py [--profile default] \
        [--threads 1,2,4] [--nodes 1,2,4,8] [--repeats 3] [--out results]
"""

from __future__ import annotations

import argparse
import contextlib
import io
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent
                       / "src"))

from repro.analysis import report  # noqa: E402


def run_command(out_dir: pathlib.Path, name: str,
                argv: list[str]) -> float:
    print(f"[reproduce] {name}: report {' '.join(argv)}")
    begin = time.perf_counter()
    buffer = io.StringIO()
    with contextlib.redirect_stdout(buffer):
        report.main(argv)
    elapsed = time.perf_counter() - begin
    text = buffer.getvalue()
    (out_dir / f"{name}.txt").write_text(text, encoding="utf-8")
    print(text)
    print(f"[reproduce] {name} done in {elapsed:.1f}s -> "
          f"{out_dir / f'{name}.txt'}\n")
    return elapsed


def run_task_bench(out_dir: pathlib.Path, threads: int = 4,
                   profile: str = "test",
                   ) -> tuple[list[str], list[dict]]:
    """Task-scheduler microbenchmark: qsort and bfs under the metrics
    tool.

    The paper's two task-parallel apps drive the work-stealing deques
    hardest, so this records their wall time plus the scheduler's
    steal/local-hit attribution, and returns a failure for any
    task-count violation: a wrong result, tasks created but never
    executed (or vice versa), executions not attributed as exactly one
    local hit or steal, or tasks that never completed.  Also returns
    one machine-readable record per kernel for ``BENCH_smoke.json``.
    """
    from repro.apps.base import get_app
    from repro.modes import Mode
    from repro.ompt.metrics import MetricsTool
    from repro.runtime import pure_runtime

    failures: list[str] = []
    lines: list[str] = []
    records: list[dict] = []
    for name in ("qsort", "bfs"):
        spec = get_app(name)
        reference = spec.sequential(**spec.inputs(profile))
        inputs = spec.inputs(profile)  # fresh: qsort sorts in place
        variant = spec.variant(Mode.PURE)
        tool = MetricsTool()
        pure_runtime.attach_tool(tool)
        try:
            begin = time.perf_counter()
            result = variant(threads=threads, **inputs)
            elapsed = time.perf_counter() - begin
        finally:
            pure_runtime.detach_tool(tool)
        data = tool.registry.as_dict()

        def counter_total(metric: str, data=data) -> float:
            family = data.get(metric)
            if family is None:
                return 0
            return sum(s["value"] for s in family["samples"])

        created = counter_total("omp_tasks_created_total")
        executed = counter_total("omp_tasks_executed_total")
        steals = counter_total("omp_task_steals_total")
        local = counter_total("omp_task_local_hits_total")
        incomplete = len(tool._tasks)
        line = (f"{name}: {elapsed:.3f}s at {threads} threads | tasks "
                f"created={created:.0f} executed={executed:.0f} "
                f"local={local:.0f} steals={steals:.0f} "
                f"incomplete={incomplete}")
        lines.append(line)
        print(f"[reproduce] task-bench {line}")
        records.append({
            "kernel": f"task-bench/{name}",
            "wall_s": elapsed,
            "threads": threads,
            "mode": "pure",
            "tasks_created": int(created),
            "tasks_executed": int(executed),
            "local_hits": int(local),
            "steals": int(steals),
        })
        if not spec.verify(result, reference):
            failures.append(f"task-bench {name}: wrong result")
        if created != executed:
            failures.append(
                f"task-bench {name}: task-count mismatch "
                f"(created={created:.0f}, executed={executed:.0f})")
        if local + steals != executed:
            failures.append(
                f"task-bench {name}: steal attribution mismatch "
                f"(local={local:.0f} + steals={steals:.0f} != "
                f"executed={executed:.0f})")
        if incomplete:
            failures.append(
                f"task-bench {name}: {incomplete} tasks never completed")
    (out_dir / "task_bench.txt").write_text("\n".join(lines) + "\n",
                                            encoding="utf-8")
    return failures, records


def write_bench_json(out_dir: pathlib.Path, records: list[dict]) -> None:
    """Write the machine-readable smoke summary ``BENCH_smoke.json``.

    CI uploads this as an artifact and ``benchmarks/check_overhead.py``
    compares two of them to gate diagnostics overhead at <2%.
    """
    import json
    import os
    import platform

    from repro.runtime.gilstate import current_backend

    payload = {
        "schema": "omp4py-bench-smoke/1",
        "python": platform.python_version(),
        "platform": platform.platform(),
        # Wall times under gil vs nogil backends are not comparable
        # (projection vs true parallelism), so the delta tool refuses
        # cross-backend comparisons.
        "backend": current_backend().value,
        # Overhead comparisons only make sense between runs with the
        # same diagnostics arming, so record the knobs in the file.
        "diagnostics": {
            "OMP4PY_FLIGHT": os.environ.get("OMP4PY_FLIGHT"),
            "OMP4PY_WATCHDOG": os.environ.get("OMP4PY_WATCHDOG"),
            "OMP4PY_TRACE": os.environ.get("OMP4PY_TRACE"),
            "OMP4PY_METRICS": os.environ.get("OMP4PY_METRICS"),
            "OMP4PY_METRICS_PORT": os.environ.get(
                "OMP4PY_METRICS_PORT"),
            "OMP4PY_PROFILE": os.environ.get("OMP4PY_PROFILE"),
            "OMP4PY_PROFILE_HZ": os.environ.get("OMP4PY_PROFILE_HZ"),
        },
        "total_wall_s": sum(r["wall_s"] for r in records),
        "kernels": records,
    }
    path = out_dir / "BENCH_smoke.json"
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"[reproduce] wrote {path}")


def run_smoke(out_dir: pathlib.Path) -> None:
    """CI smoke mode: one tiny app per figure, assert each completes.

    Uses the ``test`` profile, two thread counts, and a single app per
    sweep so the whole pass stays in CI-budget territory while still
    driving every figure's harness end to end.  Writes a per-kernel
    timing summary to ``BENCH_smoke.json`` for the CI overhead gate.
    """
    tiny = ["--profile", "test", "--threads", "1,2", "--repeats", "1"]
    plan = [
        ("table1", ["table1"]),
        ("fig5", ["fig5", *tiny, "--apps", "pi"]),
        ("fig6", ["fig6", *tiny, "--apps", "wordcount"]),
        ("fig7", ["fig7", *tiny, "--apps", "wordcount", "--chunk", "4"]),
        ("fig8", ["fig8", "--profile", "test", "--nodes", "1,2",
                  "--threads", "2", "--repeats", "1"]),
        ("headline", ["headline", *tiny, "--apps", "pi"]),
    ]
    failures = []
    records: list[dict] = []
    for name, argv in plan:
        try:
            elapsed = run_command(out_dir, name, argv)
        except Exception as error:  # noqa: BLE001 - smoke verdict
            failures.append(f"{name}: {type(error).__name__}: {error}")
            continue
        records.append({"kernel": name, "wall_s": elapsed,
                        "threads": "1,2", "mode": "harness"})
        produced = out_dir / f"{name}.txt"
        if not produced.exists() or not produced.read_text(
                encoding="utf-8").strip():
            failures.append(f"{name}: produced no output")
    try:
        task_failures, task_records = run_task_bench(out_dir)
        failures.extend(task_failures)
        records.extend(task_records)
    except Exception as error:  # noqa: BLE001 - smoke verdict
        failures.append(f"task-bench: {type(error).__name__}: {error}")
    try:
        import bench_region_overhead
        region_failures, region_records = \
            bench_region_overhead.smoke_records()
        failures.extend(region_failures)
        records.extend(region_records)
    except Exception as error:  # noqa: BLE001 - smoke verdict
        failures.append(
            f"region-overhead: {type(error).__name__}: {error}")
    try:
        import bench_projection_validation
        proj_failures, proj_records = \
            bench_projection_validation.smoke_records()
        failures.extend(proj_failures)
        records.extend(proj_records)
    except Exception as error:  # noqa: BLE001 - smoke verdict
        failures.append(
            f"projection-validate: {type(error).__name__}: {error}")
    try:
        import bench_plan
        plan_failures, plan_records = bench_plan.smoke_records()
        failures.extend(plan_failures)
        records.extend(plan_records)
    except Exception as error:  # noqa: BLE001 - smoke verdict
        failures.append(f"plan: {type(error).__name__}: {error}")
    try:
        import bench_serving
        serve_failures, serve_records = bench_serving.smoke_records()
        failures.extend(serve_failures)
        records.extend(serve_records)
    except Exception as error:  # noqa: BLE001 - smoke verdict
        failures.append(f"serving: {type(error).__name__}: {error}")
    write_bench_json(out_dir, records)
    try:
        # Ledger ride-along: append this run to BENCH_history.jsonl
        # (seeded from the committed ledger on a fresh workspace) and
        # print the cross-run trend.  Never fails the smoke verdict.
        import perf_history
        repo_root = pathlib.Path(__file__).resolve().parent.parent
        entry = perf_history.record_smoke(
            out_dir / "BENCH_smoke.json",
            out_dir / "BENCH_history.jsonl",
            seed_path=repo_root / "results" / "BENCH_history.jsonl")
        print(f"[reproduce] perf ledger: recorded {entry['sha'][:12]} "
              f"({entry['backend']}) in {out_dir}/BENCH_history.jsonl")
        print(perf_history.format_trend(
            perf_history.load_history(out_dir / "BENCH_history.jsonl")))
    except Exception as error:  # noqa: BLE001 - ledger is best-effort
        print(f"[reproduce] perf ledger skipped: "
              f"{type(error).__name__}: {error}")
    if failures:
        print("[reproduce] SMOKE FAILURES:")
        for failure in failures:
            print(f"  - {failure}")
        raise SystemExit(1)
    print(f"[reproduce] smoke OK: {len(plan)} figure harnesses, the task "
          f"microbenchmark, the region-overhead gate, the "
          f"projection-validation gate, the inspector–executor "
          f"plan gate, and the serving bench completed "
          f"(outputs in {out_dir}/)")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--profile", default="default",
                        choices=("test", "default", "paper"))
    parser.add_argument("--threads", default="1,2,4")
    parser.add_argument("--nodes", default="1,2,4,8")
    parser.add_argument("--repeats", default="1")
    parser.add_argument("--out", default="results")
    parser.add_argument("--apps", default=None,
                        help="restrict fig5 to a comma-separated app "
                             "subset (smoke runs)")
    parser.add_argument("--skip-check", action="store_true",
                        help="skip the shape-claim verdicts (their "
                             "bands assume the default profile)")
    parser.add_argument("--smoke", action="store_true",
                        help="CI smoke run: one tiny app per figure, "
                             "fail if any harness breaks")
    parser.add_argument("--task-bench", action="store_true",
                        help="run only the qsort/bfs task-scheduler "
                             "microbenchmark (steal counts, task-count "
                             "conservation)")
    args = parser.parse_args()

    out_dir = pathlib.Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    if args.smoke:
        run_smoke(out_dir)
        return
    if args.task_bench:
        threads = int(args.threads.split(",")[-1])
        failures, _records = run_task_bench(out_dir, threads=threads,
                                            profile=args.profile)
        if failures:
            print("[reproduce] TASK-BENCH FAILURES:")
            for failure in failures:
                print(f"  - {failure}")
            raise SystemExit(1)
        print(f"[reproduce] task bench OK -> {out_dir / 'task_bench.txt'}")
        return
    common = ["--profile", args.profile, "--threads", args.threads,
              "--repeats", args.repeats]

    # The paper's chunk of 300 assumes its 300k-node / 2M-line inputs;
    # scale it with the profile so the chunk:iteration ratio matches.
    chunk = {"test": "4", "default": "8", "paper": "300"}[args.profile]

    run_command(out_dir, "table1", ["table1"])
    fig5_args = ["fig5", *common]
    if args.apps:
        fig5_args += ["--apps", args.apps]
    run_command(out_dir, "fig5", fig5_args)
    run_command(out_dir, "fig6", ["fig6", *common])
    run_command(out_dir, "fig7", ["fig7", *common, "--chunk", chunk])
    run_command(out_dir, "fig8", ["fig8", "--profile", args.profile,
                                  "--nodes", args.nodes, "--threads",
                                  args.threads.split(",")[-1],
                                  "--repeats", args.repeats])
    headline_args = ["headline", *common]
    if args.apps:
        headline_args += ["--apps", args.apps]
    run_command(out_dir, "headline", headline_args)
    if not args.skip_check:
        try:
            run_command(out_dir, "shapecheck",
                        ["check", "--profile", args.profile,
                         "--repeats", args.repeats])
        except SystemExit:
            print("[reproduce] WARNING: some shape claims failed "
                  "(see shapecheck.txt)")
    print(f"[reproduce] all outputs in {out_dir}/")


if __name__ == "__main__":
    main()
