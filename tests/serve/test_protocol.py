"""Digest verification and front-door request parsing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import OmpError
from repro.serve.protocol import (
    ServeRequest,
    digests_match,
    parse_request,
    result_digest,
)

APPS = ("pi", "qsort", "jacobi")


def test_digest_scalar_and_array_agree_with_list():
    assert result_digest([1.0, 2.0, 3.0]) == \
        result_digest(np.array([1.0, 2.0, 3.0]))
    digest = result_digest(3.25)
    assert digest["n"] == 1
    assert digest["sum"] == pytest.approx(3.25)


def test_digest_tolerates_reduction_reassociation():
    base = result_digest(np.full(1000, 1.0 / 3.0))
    wiggle = dict(base, sum=base["sum"] * (1 + 5e-4))
    assert digests_match(base, wiggle)


def test_digest_rejects_real_mismatches():
    base = result_digest(np.arange(100.0))
    assert not digests_match(base, dict(base, n=99))
    assert not digests_match(base, dict(base, sum=base["sum"] * 1.5))
    assert not digests_match(base, dict(base, meta="000000000000"))
    assert not digests_match(base, None)


def test_digest_hashes_non_numeric_structure():
    a = result_digest({"words": ["alpha", "beta"], "count": 2})
    b = result_digest({"words": ["alpha", "gamma"], "count": 2})
    assert a["meta"] != b["meta"]


def test_parse_request_defaults():
    request = parse_request({"app": "pi"}, known_apps=APPS,
                            default_tenant="default", max_threads=8)
    assert request.tenant == "default"
    assert request.mode == "pure"
    assert request.threads == 1
    assert not request.return_values


@pytest.mark.parametrize("doc", [
    [],
    {"app": "nope"},
    {"app": "pi", "threads": 0},
    {"app": "pi", "threads": "two"},
    {"app": "pi", "threads": 99},
    {"app": "pi", "nodes": 0},
    {"app": "pi", "mode": "hybridd"},
    {"app": "pi", "profile": 7},
    {"app": "pi", "overrides": [1]},
    {"app": "pi", "overrides": {"n": [1, 2]}},
    {"app": "pi", "tenant": ""},
])
def test_parse_request_rejects_malformed(doc):
    with pytest.raises(OmpError):
        parse_request(doc, known_apps=APPS,
                      default_tenant="default", max_threads=8)


def test_group_key_coalesces_identical_requests_only():
    a = ServeRequest(app="pi", tenant="t", overrides={"n": 10})
    b = ServeRequest(app="pi", tenant="t", overrides={"n": 10})
    c = ServeRequest(app="pi", tenant="t", overrides={"n": 20})
    d = ServeRequest(app="pi", tenant="u", overrides={"n": 10})
    assert a.group_key == b.group_key
    assert a.group_key != c.group_key
    assert a.group_key != d.group_key
    assert a.id != b.id


def test_complete_sets_event():
    request = ServeRequest(app="pi", tenant="t")
    assert not request.done.is_set()
    request.complete({"ok": True})
    assert request.done.is_set()
    assert request.response == {"ok": True}
