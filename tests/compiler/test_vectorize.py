"""Tests of the typed NumPy-kernel lowering (CompiledDT)."""

import ast

import numpy as np
import pytest

from repro import Mode, transform
from repro.compiler.vectorize import VectorizePass
from repro.transform.context import TransformContext


def vectorize_source(source: str):
    """Run only the vectorizer over plain source; return (pass, code)."""
    tree = ast.parse(source)
    ctx = TransformContext("__omp0__", set(), set())
    vectorizer = VectorizePass(ctx)
    node = vectorizer.run(tree.body[0])
    module = ast.Module(body=[node], type_ignores=[])
    ast.fix_missing_locations(module)
    return vectorizer, module


def execute(module, name, *args):
    from repro.compiler import kernels
    from repro.compiler.vectorize import KERNEL_HANDLE
    namespace = {KERNEL_HANDLE: kernels, "math": __import__("math")}
    exec(compile(module, "<vec>", "exec"), namespace)
    return namespace[name](*args)


class TestVectorizesSimpleLoops:
    def test_sum_reduction(self):
        vectorizer, module = vectorize_source(
            "def f(n):\n"
            "    total: float = 0.0\n"
            "    for i in range(n):\n"
            "        total += i * 2.0\n"
            "    return total\n")
        assert any(outcome == "vectorized"
                   for _line, outcome in vectorizer.report)
        assert execute(module, "f", 100) == sum(i * 2.0 for i in range(100))

    def test_pi_kernel_matches_interpreted(self):
        source = (
            "def f(n):\n"
            "    w: float = 1.0 / n\n"
            "    total: float = 0.0\n"
            "    for i in range(n):\n"
            "        local = (i + 0.5) * w\n"
            "        total += 4.0 / (1.0 + local * local)\n"
            "    return total * w\n")
        _vec, module = vectorize_source(source)
        plain: dict = {}
        exec(source, plain)
        assert execute(module, "f", 1000) == pytest.approx(
            plain["f"](1000), rel=1e-12)

    def test_subtraction_reduction(self):
        source = (
            "def f(n):\n"
            "    total: float = 100.0\n"
            "    for i in range(n):\n"
            "        total -= 0.5\n"
            "    return total\n")
        _vec, module = vectorize_source(source)
        assert execute(module, "f", 10) == pytest.approx(95.0)

    def test_product_reduction(self):
        source = (
            "def f(n):\n"
            "    total: float = 1.0\n"
            "    for i in range(1, n):\n"
            "        total *= 1.0 + 1.0 / i\n"
            "    return total\n")
        _vec, module = vectorize_source(source)
        plain: dict = {}
        exec(source, plain)
        assert execute(module, "f", 20) == pytest.approx(plain["f"](20))

    def test_min_max_pattern(self):
        source = (
            "def f(n):\n"
            "    low: float = 1e9\n"
            "    high: float = -1e9\n"
            "    for i in range(n):\n"
            "        v = (i * 7919) % 1000 + 0.5\n"
            "        low = min(low, v)\n"
            "        high = max(high, v)\n"
            "    return low, high\n")
        vectorizer, module = vectorize_source(source)
        plain: dict = {}
        exec(source, plain)
        assert execute(module, "f", 500) == plain["f"](500)

    def test_empty_range(self):
        source = (
            "def f(n):\n"
            "    total: float = 3.0\n"
            "    for i in range(n):\n"
            "        total += 1.0\n"
            "    return total\n")
        _vec, module = vectorize_source(source)
        assert execute(module, "f", 0) == 3.0

    def test_step_range(self):
        source = (
            "def f(n):\n"
            "    total: int = 0\n"
            "    for i in range(0, n, 3):\n"
            "        total += i\n"
            "    return total\n")
        _vec, module = vectorize_source(source)
        assert execute(module, "f", 100) == sum(range(0, 100, 3))

    def test_math_functions(self):
        source = (
            "import math\n"
            "def f(n):\n"
            "    total: float = 0.0\n"
            "    for i in range(1, n):\n"
            "        total += math.sqrt(i) + math.sin(i) * math.cos(i)\n"
            "    return total\n")
        tree = ast.parse(source)
        ctx = TransformContext("__omp0__", set(), set())
        node = VectorizePass(ctx).run(tree.body[1])
        module = ast.Module(body=[node], type_ignores=[])
        ast.fix_missing_locations(module)
        plain: dict = {}
        exec(source, plain)
        assert execute(module, "f", 50) == pytest.approx(plain["f"](50))

    def test_conditional_expression_becomes_where(self):
        source = (
            "def f(n):\n"
            "    total: float = 0.0\n"
            "    for i in range(n):\n"
            "        total += 1.0 if i % 2 == 0 else -1.0\n"
            "    return total\n")
        _vec, module = vectorize_source(source)
        plain: dict = {}
        exec(source, plain)
        assert execute(module, "f", 11) == plain["f"](11)

    def test_array_store_elementwise(self):
        source = (
            "def f(out, n):\n"
            "    w: float = 2.0\n"
            "    for i in range(n):\n"
            "        out[i] = i * w\n"
            "    return out\n")
        _vec, module = vectorize_source(source)
        result = execute(module, "f", np.zeros(10), 10)
        assert list(result) == [i * 2.0 for i in range(10)]

    def test_array_gather_load(self):
        source = (
            "def f(a, b, n):\n"
            "    total: float = 0.0\n"
            "    for i in range(n):\n"
            "        total += a[i] * b[n - 1 - i]\n"
            "    return total\n")
        _vec, module = vectorize_source(source)
        a = np.arange(10.0)
        b = np.arange(10.0) * 3
        expected = sum(a[i] * b[9 - i] for i in range(10))
        assert execute(module, "f", a, b, 10) == pytest.approx(expected)

    def test_elementwise_update_same_index_allowed(self):
        source = (
            "def f(a, n):\n"
            "    c: float = 3.0\n"
            "    for i in range(n):\n"
            "        a[i] = a[i] * c\n"
            "    return a\n")
        vectorizer, module = vectorize_source(source)
        assert any(o == "vectorized" for _l, o in vectorizer.report)
        result = execute(module, "f", np.ones(5), 5)
        assert list(result) == [3.0] * 5


class TestRejections:
    def reject_reason(self, source):
        vectorizer, _module = vectorize_source(source)
        reasons = [o for _l, o in vectorizer.report if o != "vectorized"]
        assert reasons, "expected a fallback"
        return reasons[0]

    def test_untyped_scalar_rejected(self):
        reason = self.reject_reason(
            "def f(n, w):\n"
            "    total: float = 0.0\n"
            "    for i in range(n):\n"
            "        total += i * w\n"
            "    return total\n")
        assert "untyped" in reason

    def test_loop_carried_recurrence_rejected(self):
        reason = self.reject_reason(
            "def f(n):\n"
            "    x: float = 1.0\n"
            "    q: float = 0.5\n"
            "    for i in range(n):\n"
            "        x = x * q\n"
            "    return x\n")
        assert "loop-carried" in reason

    def test_shifted_store_load_overlap_rejected(self):
        reason = self.reject_reason(
            "def f(a, n):\n"
            "    c: float = 1.0\n"
            "    for i in range(1, n):\n"
            "        a[i] = a[i - 1] * c\n"
            "    return a\n")
        assert "aliases" in reason or "one-to-one" in reason \
            or "loop-carried" in reason

    def test_statement_with_side_effects_rejected(self):
        reason = self.reject_reason(
            "def f(n):\n"
            "    total: float = 0.0\n"
            "    for i in range(n):\n"
            "        print(i)\n"
            "        total += i\n"
            "    return total\n")
        assert "unsupported statement" in reason

    def test_unknown_call_rejected(self):
        reason = self.reject_reason(
            "def f(n):\n"
            "    total: float = 0.0\n"
            "    for i in range(n):\n"
            "        total += hash(i)\n"
            "    return total\n")
        assert "not a recognised" in reason

    def test_store_index_not_injective_rejected(self):
        reason = self.reject_reason(
            "def f(a, n):\n"
            "    c: float = 1.0\n"
            "    for i in range(n):\n"
            "        a[i % 3] = i * c\n"
            "    return a\n")
        assert "one-to-one" in reason

    def test_nested_loop_not_vectorized_but_inner_is(self):
        source = (
            "def f(a, n):\n"
            "    total: float = 0.0\n"
            "    for i in range(n):\n"
            "        row = 0.0\n"
            "        for j in range(n):\n"
            "            row += a[i][j]\n"
            "        total += row\n"
            "    return total\n")
        vectorizer, module = vectorize_source(source)
        outcomes = [o for _l, o in vectorizer.report]
        assert "vectorized" in outcomes  # the inner loop
        matrix = [[float(i * 10 + j) for j in range(4)] for i in range(4)]
        expected = sum(sum(row) for row in matrix)
        assert execute(module, "f", matrix, 4) == pytest.approx(expected)


class TestModeIntegration:
    def test_compileddt_results_match_other_modes(self):
        fn_dt = transform(_pi_typed, Mode.COMPILED_DT)
        fn_py = transform(_pi_typed, Mode.HYBRID)
        assert fn_dt(20000) == pytest.approx(fn_py(20000), rel=1e-12)

    def test_compiled_mode_skips_vectorizer(self):
        fn = transform(_pi_typed, Mode.COMPILED)
        source = fn.__omp_source__
        assert "__omp_k__" not in source

    def test_compileddt_emits_kernel(self):
        fn = transform(_pi_typed, Mode.COMPILED_DT)
        assert "__omp_k__" in fn.__omp_source__


def _pi_typed(n):
    from repro import omp
    w: float = 1.0 / n
    total: float = 0.0
    with omp("parallel for reduction(+:total) num_threads(2)"):
        for i in range(n):
            x = (i + 0.5) * w
            total += 4.0 / (1.0 + x * x)
    return total * w
