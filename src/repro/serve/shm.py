"""Shared-memory data plane: array registry and the handle protocol.

The serving layer never pickles request arrays.  The server process
materializes every numeric input once into a
:mod:`multiprocessing.shared_memory` segment owned by a
:class:`ShmRegistry`, and jobs carry only :class:`ArrayHandle`
descriptors (segment name, dtype, shape) over the control pipe.
Workers map the segment with :func:`attach_array` — a zero-copy NumPy
view — and copy locally only when the kernel mutates its input.

Resource-tracker discipline (the satellite fix): on CPython ≤ 3.12
*attaching* a segment registers it with a ``resource_tracker`` too,
and what that does depends on whose tracker the attacher talks to:

* a **spawned worker** inherits the server's tracker fd
  (``_pid is None`` in the child, per CPython's own comment), so its
  attach-register is a no-op set-add — but an unregister would strip
  the *server's* registration, producing tracker ``KeyError`` noise at
  release and losing crash cleanup.  Workers must leave the tracker
  alone.
* an **independent process** (a client attaching by handle) gets its
  own tracker, which then believes it owns the segment: its exit
  unlinks data the server still serves and prints ``leaked
  shared_memory objects`` warnings.  There the attach must be followed
  by an immediate unregister.
* the **creator process** re-attaching its own segment must also not
  unregister, or the legitimate create-registration is lost.

:func:`attach_unregister` encodes exactly that decision (the creator
case via the owner pid embedded in every segment name) and every
attach path here applies it.  The serve test suite kills a worker
mid-request and asserts no segment leaks or vanishes
(``tests/serve/test_server.py``,
``tests/integration/test_serve_e2e.py``).
"""

from __future__ import annotations

import dataclasses
import os
import threading
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from repro.errors import OmpError

#: Segment-name prefix; :func:`leaked_segments` scans for it.
SEGMENT_PREFIX = "o4pserve"


@dataclasses.dataclass(frozen=True)
class ArrayHandle:
    """Wire descriptor of one shared array: name, dtype, shape.

    ``container`` records the Python type the app's input builder
    produced (``"list"`` inputs are still handed to kernels as NumPy
    views — the shipped kernels index, slice, and swap identically on
    both).  ``read_only`` marks fields workers may use zero-copy;
    everything else is copied out of the segment before the kernel
    runs so one request's in-place mutation (qsort sorts its input)
    cannot corrupt the cached data plane.
    """

    segment: str
    dtype: str
    shape: tuple[int, ...]
    container: str = "ndarray"
    read_only: bool = False

    def to_wire(self) -> dict:
        return {"segment": self.segment, "dtype": self.dtype,
                "shape": list(self.shape), "container": self.container,
                "read_only": self.read_only}

    @classmethod
    def from_wire(cls, doc: dict) -> "ArrayHandle":
        return cls(segment=doc["segment"], dtype=doc["dtype"],
                   shape=tuple(doc["shape"]),
                   container=doc.get("container", "ndarray"),
                   read_only=bool(doc.get("read_only", False)))

    @property
    def nbytes(self) -> int:
        count = 1
        for extent in self.shape:
            count *= extent
        return count * np.dtype(self.dtype).itemsize


def _tracker_name(shm: shared_memory.SharedMemory) -> str:
    # ``SharedMemory`` registers its private ``_name`` (with the
    # leading slash on POSIX); ``.name`` strips it, so unregistering
    # must use the same spelling registration did.
    return getattr(shm, "_name", shm.name)


def _tracker_is_inherited() -> bool:
    # A spawned child receives the parent's tracker fd with no tracker
    # pid of its own (multiprocessing.spawn.spawn_main); registering or
    # unregistering from here mutates the *parent's* bookkeeping.
    tracker = resource_tracker._resource_tracker
    return getattr(tracker, "_fd", None) is not None \
        and getattr(tracker, "_pid", None) is None


def attach_unregister(shm: shared_memory.SharedMemory) -> bool:
    """Undo the attach-time tracker registration when — and only when —
    this process owns a private tracker and is not the segment's
    creator (see the module docstring).  Returns whether it did."""
    if _tracker_is_inherited():
        return False
    if f"_{os.getpid()}_" in shm.name:
        return False
    try:
        resource_tracker.unregister(_tracker_name(shm), "shared_memory")
    except Exception:  # pragma: no cover - tracker already gone
        return False
    return True


class ShmRegistry:
    """Server-side owner of every shared segment.

    ``create_array`` copies a NumPy array into a fresh segment and
    returns its handle; ``release``/``close_all`` unlink.  The segment
    objects are kept referenced so the mappings stay alive for the
    registry's lifetime, and names embed the owner pid plus a
    monotonic counter so a crashed run's leftovers are attributable.
    """

    def __init__(self, tag: str = "srv"):
        self._lock = threading.Lock()
        self._segments: dict[str, shared_memory.SharedMemory] = {}
        self._counter = 0
        self._tag = tag

    def _next_name(self) -> str:
        self._counter += 1
        return (f"{SEGMENT_PREFIX}_{self._tag}_{os.getpid()}_"
                f"{self._counter}")

    def create_array(self, array: np.ndarray, *,
                     container: str = "ndarray",
                     read_only: bool = False) -> ArrayHandle:
        array = np.ascontiguousarray(array)
        with self._lock:
            name = self._next_name()
        shm = shared_memory.SharedMemory(
            create=True, size=max(1, array.nbytes), name=name)
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=shm.buf)
        view[...] = array
        with self._lock:
            self._segments[name] = shm
        return ArrayHandle(segment=name, dtype=array.dtype.str,
                           shape=tuple(array.shape),
                           container=container, read_only=read_only)

    def create_slab(self, floats: int) -> ArrayHandle:
        """A reusable float64 response slab (see the worker protocol)."""
        return self.create_array(np.zeros(floats, dtype=np.float64),
                                 container="slab", read_only=False)

    def view(self, handle: ArrayHandle) -> np.ndarray:
        with self._lock:
            shm = self._segments.get(handle.segment)
        if shm is None:
            raise OmpError(f"unknown shared segment {handle.segment!r}")
        return np.ndarray(handle.shape, dtype=handle.dtype,
                          buffer=shm.buf)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._segments)

    def total_bytes(self) -> int:
        with self._lock:
            return sum(shm.size for shm in self._segments.values())

    def release(self, segment: str) -> None:
        with self._lock:
            shm = self._segments.pop(segment, None)
        if shm is None:
            return
        shm.close()
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass

    def close_all(self) -> None:
        with self._lock:
            segments = list(self._segments)
        for segment in segments:
            self.release(segment)


class AttachedArrays:
    """Worker-side cache of mapped segments.

    One job batch touches the same input set repeatedly; the cache
    keeps each segment mapped once per worker process.  Every attach
    applies :func:`attach_unregister`, so no process's resource
    tracker ever wrongly believes it owns a server segment.
    """

    def __init__(self):
        self._attached: dict[str, shared_memory.SharedMemory] = {}

    def get(self, handle: ArrayHandle) -> np.ndarray:
        shm = self._attached.get(handle.segment)
        if shm is None:
            shm = shared_memory.SharedMemory(name=handle.segment)
            attach_unregister(shm)
            self._attached[handle.segment] = shm
        return np.ndarray(handle.shape, dtype=handle.dtype,
                          buffer=shm.buf)

    def materialize(self, handle: ArrayHandle) -> np.ndarray:
        """The kernel-facing value: zero-copy view for read-only
        fields, a private copy otherwise."""
        view = self.get(handle)
        return view if handle.read_only else view.copy()

    def drop(self, segment: str) -> None:
        shm = self._attached.pop(segment, None)
        if shm is not None:
            try:
                shm.close()
            except BufferError:  # pragma: no cover - view still alive
                pass

    def close_all(self) -> None:
        for segment in list(self._attached):
            self.drop(segment)


def attach_array(handle: ArrayHandle) -> tuple[
        shared_memory.SharedMemory, np.ndarray]:
    """Map one segment (unregister discipline applied); caller closes."""
    shm = shared_memory.SharedMemory(name=handle.segment)
    attach_unregister(shm)
    view = np.ndarray(handle.shape, dtype=handle.dtype, buffer=shm.buf)
    return shm, view


def leaked_segments(prefix: str = SEGMENT_PREFIX) -> list[str]:
    """Serving segments still present on the host (POSIX: /dev/shm).

    The leak regression tests call this after shutdown; on platforms
    without /dev/shm it degrades to "cannot tell" (empty list).
    """
    shm_dir = "/dev/shm"
    if not os.path.isdir(shm_dir):  # pragma: no cover - non-POSIX
        return []
    return sorted(entry for entry in os.listdir(shm_dir)
                  if entry.startswith(prefix))
