"""Seeded fault: a barrier that only one thread reaches.

Thread 0 executes an extra ``omp("barrier")`` the other member never
matches.  Under generation counting the peer's *implicit join barrier*
satisfies the extra one, after which thread 0 arrives at the join
barrier alone — and its peer has already left the region, so that
barrier can never be released.  (``omplint`` flags the statically
detectable form of this bug — a barrier nested in ``master``/
``single`` — as OMP106; hiding it behind a thread-id test like this
one is only caught at runtime.)

Run it under the doctor::

    python -m repro.doctor run examples/faults/unmatched_barrier.py \
        --watchdog 0.5

Expected doctor verdict: **deadlock** (unsatisfiable barrier: a
non-arrived team member already left the region), exit code 86.
"""

from repro import omp, omp_get_thread_num


@omp
def unmatched():
    with omp("parallel num_threads(2)"):
        if omp_get_thread_num() == 0:
            omp("barrier")  # the peer never executes a matching barrier


if __name__ == "__main__":
    print("entering a barrier only thread 0 reaches...", flush=True)
    unmatched()
    print("unreachable: the region above hangs at the join barrier")
