"""The ``mpirun`` analogue: launch ranks as threads.

Each rank thread receives its own :class:`Intracomm` both via
``comm_world()`` and as the first argument of the rank main function.
Exceptions in any rank abort the launch and re-raise at the caller.
"""

from __future__ import annotations

import os
import threading

from repro.errors import OmpRuntimeError
from repro.mpi.comm import Intracomm, _Cluster, _set_comm

#: Environment variables real MPI launchers set, in precedence order
#: (Open MPI, MPICH/Hydra, PMIx, Slurm).
_RANK_VARIABLES = ("OMPI_COMM_WORLD_RANK", "PMI_RANK", "PMIX_RANK",
                   "SLURM_PROCID")


def env_rank() -> int | None:
    """The process's MPI rank per the launcher environment, or ``None``
    outside an external ``mpiexec``/``srun`` launch.

    The in-process :func:`mpirun` below does not set these — its ranks
    are threads sharing one runtime (and one trace); rank-aware
    artifact naming only matters when each rank is its own process.
    """
    for variable in _RANK_VARIABLES:
        raw = os.environ.get(variable)
        if raw is None or not raw.strip():
            continue
        try:
            return int(raw)
        except ValueError:
            continue
    return None


def mpirun(nprocs: int, main, *args, **kwargs) -> list:
    """Run ``main(comm, *args, **kwargs)`` on ``nprocs`` ranks.

    Returns the list of per-rank return values, ordered by rank.
    """
    if nprocs < 1:
        raise OmpRuntimeError("mpirun needs at least one rank")
    cluster = _Cluster(nprocs)
    results: list = [None] * nprocs
    errors: list = []
    errors_lock = threading.Lock()

    def rank_main(rank: int) -> None:
        comm = Intracomm(cluster, rank)
        _set_comm(comm)
        try:
            results[rank] = main(comm, *args, **kwargs)
        except BaseException as error:  # noqa: BLE001 - reported below
            with errors_lock:
                errors.append((rank, error))
            # Release peers stuck in collectives.
            cluster.barrier.abort()
        finally:
            _set_comm(None)

    threads = [threading.Thread(target=rank_main, args=(rank,),
                                name=f"mpi-rank-{rank}")
               for rank in range(nprocs)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        rank, error = errors[0]
        raise OmpRuntimeError(f"rank {rank} failed") from error
    return results
