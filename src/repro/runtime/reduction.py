"""Reduction operators: the OpenMP 3.0 built-ins plus ``declare
reduction`` (OpenMP 4.0, included per the paper).

Each operator supplies an identity (the value private copies start from)
and a combiner.  The registry of user-declared reductions is shared by
both runtimes — a declared name means the same thing everywhere, just as
a ``declare reduction`` in a C translation unit does.
"""

from __future__ import annotations

import math
import threading

from repro.errors import OmpRuntimeError


class ReductionOp:
    __slots__ = ("name", "initializer", "combiner")

    def __init__(self, name, initializer, combiner):
        self.name = name
        self.initializer = initializer
        self.combiner = combiner


_BUILTINS: dict[str, ReductionOp] = {}


def _builtin(name, initializer, combiner):
    _BUILTINS[name] = ReductionOp(name, initializer, combiner)


_builtin("+", lambda: 0, lambda out, value: out + value)
# OpenMP reduces "-" with addition of the partial sums: each private
# copy accumulates subtractions from 0, and partials are summed.
_builtin("-", lambda: 0, lambda out, value: out + value)
_builtin("*", lambda: 1, lambda out, value: out * value)
_builtin("&", lambda: -1, lambda out, value: out & value)
_builtin("|", lambda: 0, lambda out, value: out | value)
_builtin("^", lambda: 0, lambda out, value: out ^ value)
_builtin("&&", lambda: True, lambda out, value: bool(out and value))
_builtin("||", lambda: False, lambda out, value: bool(out or value))
_builtin("and", lambda: True, lambda out, value: bool(out and value))
_builtin("or", lambda: False, lambda out, value: bool(out or value))
_builtin("min", lambda: math.inf, min)
_builtin("max", lambda: -math.inf, max)


_declared: dict[str, ReductionOp] = {}
_declared_lock = threading.Lock()


def declare_reduction(name: str, combiner, initializer=None) -> None:
    """Register a user reduction (API form of ``declare reduction``).

    ``combiner`` is ``f(omp_out, omp_in) -> new omp_out``;
    ``initializer`` is a zero-argument callable producing the identity
    (defaults to ``None``-identity via the combiner's first real value —
    OpenMP requires an initializer for non-trivial types, and so do we).
    """
    if not name.isidentifier():
        raise OmpRuntimeError(f"invalid reduction name {name!r}")
    if name in _BUILTINS:
        raise OmpRuntimeError(f"cannot redeclare built-in reduction {name!r}")
    if initializer is None:
        raise OmpRuntimeError(
            f"declare reduction {name!r} requires an initializer")
    with _declared_lock:
        _declared[name] = ReductionOp(name, initializer, combiner)


def lookup(name: str) -> ReductionOp:
    op = _BUILTINS.get(name) or _declared.get(name)
    if op is None:
        raise OmpRuntimeError(f"unknown reduction operator {name!r}")
    return op


def reduction_init(name: str):
    """Identity value for private reduction copies."""
    return lookup(name).initializer()


def reduction_combine(name: str, out, value):
    """Combine a private partial result into the shared variable."""
    return lookup(name).combiner(out, value)
