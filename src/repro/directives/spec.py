"""Declarative registry of OpenMP 3.0 directives and clauses.

Every directive OMP4Py supports is described here once: which clauses it
accepts, how each clause's argument is shaped, which clauses may repeat,
and which are mutually exclusive.  The parser and the transformer both
consult this table, so adding a construct is a single-table change plus a
lowering rule.

Coverage matches the paper: the full OpenMP 3.0 directive set (Section
III), ``declare reduction`` from 4.0, the ``default(private |
firstprivate)`` variants from later standards, and the optional argument
form of ``nowait`` (Section V).
"""

from __future__ import annotations

import dataclasses
import enum


class ArgShape(enum.Enum):
    """How a clause's parenthesised argument is parsed."""

    NONE = "none"              # barrier-style bare clause
    VARLIST = "varlist"        # private(a, b)
    EXPR = "expr"              # if(n > 10), num_threads(2 * k)
    OPT_EXPR = "opt_expr"      # nowait / nowait(expr) — 6.0 syntax
    REDUCTION = "reduction"    # reduction(op: list)
    DEPEND = "depend"          # depend(in|out|inout: list)
    SCHEDULE = "schedule"      # schedule(kind[, chunk-expr])
    DEFAULT = "default"        # default(shared|none|private|firstprivate)
    DECLARE_REDUCTION = "declare_reduction"  # (ident : combiner) ...


@dataclasses.dataclass(frozen=True)
class ClauseSpec:
    name: str
    shape: ArgShape
    #: May the clause appear more than once on a directive?
    repeatable: bool = False


#: Clause vocabulary.  Data-sharing clauses are repeatable like in C.
CLAUSES: dict[str, ClauseSpec] = {
    spec.name: spec for spec in (
        ClauseSpec("if", ArgShape.EXPR),
        ClauseSpec("num_threads", ArgShape.EXPR),
        ClauseSpec("default", ArgShape.DEFAULT),
        ClauseSpec("private", ArgShape.VARLIST, repeatable=True),
        ClauseSpec("firstprivate", ArgShape.VARLIST, repeatable=True),
        ClauseSpec("lastprivate", ArgShape.VARLIST, repeatable=True),
        ClauseSpec("shared", ArgShape.VARLIST, repeatable=True),
        ClauseSpec("copyin", ArgShape.VARLIST, repeatable=True),
        ClauseSpec("copyprivate", ArgShape.VARLIST, repeatable=True),
        ClauseSpec("reduction", ArgShape.REDUCTION, repeatable=True),
        ClauseSpec("schedule", ArgShape.SCHEDULE),
        ClauseSpec("collapse", ArgShape.EXPR),
        ClauseSpec("ordered", ArgShape.NONE),
        ClauseSpec("nowait", ArgShape.OPT_EXPR),
        ClauseSpec("untied", ArgShape.NONE),
        ClauseSpec("initializer", ArgShape.EXPR),
        # Task dependences (OpenMP 4.0; prototyped per the paper's
        # Section V sketch: object identity as the dependence key).
        ClauseSpec("depend", ArgShape.DEPEND, repeatable=True),
        # taskloop (OpenMP 4.5; prototyped per the paper's Section V).
        ClauseSpec("grainsize", ArgShape.EXPR),
        ClauseSpec("num_tasks", ArgShape.EXPR),
        ClauseSpec("nogroup", ArgShape.NONE),
    )
}

_DATA_SHARING = ("private", "firstprivate", "shared", "default",
                 "reduction", "copyin")


@dataclasses.dataclass(frozen=True)
class DirectiveSpec:
    name: str
    clauses: tuple[str, ...] = ()
    #: Directives taking a direct parenthesised identifier list, e.g.
    #: ``critical(name)``, ``flush(a, b)``, ``threadprivate(x)``.
    takes_arguments: bool = False
    #: Must the direct argument list be non-empty?
    requires_arguments: bool = False
    #: Maximum number of direct arguments (None = unlimited).
    max_arguments: int | None = None
    #: Is this a standalone directive (bare ``omp("...")`` call) rather
    #: than one introducing a structured block (``with omp("..."):``)?
    standalone: bool = False
    #: Clause pairs that cannot coexist.
    exclusive: tuple[tuple[str, str], ...] = ()


DIRECTIVES: dict[str, DirectiveSpec] = {
    spec.name: spec for spec in (
        DirectiveSpec(
            "parallel",
            clauses=("if", "num_threads", *_DATA_SHARING),
        ),
        DirectiveSpec(
            "for",
            clauses=("private", "firstprivate", "lastprivate", "reduction",
                     "schedule", "collapse", "ordered", "nowait"),
        ),
        DirectiveSpec(
            "sections",
            clauses=("private", "firstprivate", "lastprivate", "reduction",
                     "nowait"),
        ),
        DirectiveSpec("section"),
        DirectiveSpec(
            "single",
            clauses=("private", "firstprivate", "copyprivate", "nowait"),
            exclusive=(("copyprivate", "nowait"),),
        ),
        DirectiveSpec(
            "task",
            clauses=("if", "untied", "default", "private", "firstprivate",
                     "shared", "depend"),
        ),
        DirectiveSpec("master"),
        DirectiveSpec("critical", takes_arguments=True, max_arguments=1),
        DirectiveSpec("barrier", standalone=True),
        DirectiveSpec("taskwait", standalone=True),
        DirectiveSpec("atomic"),
        DirectiveSpec("flush", takes_arguments=True, standalone=True),
        DirectiveSpec("ordered"),
        DirectiveSpec("threadprivate", takes_arguments=True,
                      requires_arguments=True, standalone=True),
        DirectiveSpec(
            "parallel for",
            clauses=("if", "num_threads", *_DATA_SHARING, "lastprivate",
                     "schedule", "collapse", "ordered"),
        ),
        DirectiveSpec(
            "parallel sections",
            clauses=("if", "num_threads", *_DATA_SHARING, "lastprivate"),
        ),
        DirectiveSpec(
            "declare reduction",
            clauses=("initializer",),
            takes_arguments=True,   # parsed specially: (ident : combiner)
            standalone=True,
        ),
        # Future-work prototype (paper Section V: "directives such as
        # teams or taskloop are relatively straightforward since their
        # semantics build on existing constructs").
        DirectiveSpec(
            "taskloop",
            clauses=("if", "untied", "default", "private", "firstprivate",
                     "shared", "grainsize", "num_tasks", "nogroup"),
            exclusive=(("grainsize", "num_tasks"),),
        ),
    )
}

#: Longest directive names first so "parallel for" beats "parallel".
_DIRECTIVES_BY_LENGTH = sorted(
    DIRECTIVES, key=lambda name: -len(name.split()))


def match_directive(words: list[str]) -> str | None:
    """Longest directive name matching a prefix of ``words``.

    Word separators in combined directives may be spaces or (OpenMP 6.0
    syntax, supported per the paper) underscores, so ``parallel_for`` has
    already been split into ``["parallel", "for"]`` by the caller.
    """
    for name in _DIRECTIVES_BY_LENGTH:
        parts = name.split()
        if words[: len(parts)] == parts:
            return name
    return None


#: Reduction operators of OpenMP 3.0, adapted to Python spelling.  The
#: C logical/bitwise forms and the Python keywords are both accepted.
REDUCTION_OPERATORS = frozenset(
    {"+", "*", "-", "&", "|", "^", "&&", "||", "and", "or", "min", "max"})
