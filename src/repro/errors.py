"""Exception hierarchy for the OMP4Py reproduction.

The paper specifies that malformed directives raise a ``SyntaxError`` at
decoration time, while misuse detected during execution (for example a
worksharing construct outside a parallel region when one is required)
surfaces as a runtime error.  We keep a small, explicit hierarchy so user
code can catch precisely what it cares about.
"""

from __future__ import annotations


class OmpError(Exception):
    """Base class for every error raised by this package."""


class OmpSyntaxError(OmpError, SyntaxError):
    """A directive string or its placement in the source is malformed.

    Raised while the ``@omp`` decorator processes a function or class.
    ``directive`` carries the offending directive text and ``lineno`` the
    line inside the decorated object's source, when known.
    """

    def __init__(self, message: str, directive: str | None = None,
                 lineno: int | None = None):
        location = ""
        if directive is not None:
            location += f" in directive {directive!r}"
        if lineno is not None:
            location += f" (line {lineno})"
        super().__init__(message + location)
        self.directive = directive
        self.lineno = lineno


class OmpRuntimeError(OmpError, RuntimeError):
    """The runtime detected a non-conforming situation during execution."""


class OmpTransformError(OmpError):
    """The decorator could not process the target object.

    Typical causes: the source is unavailable (interactive definitions),
    the function closes over free variables, or an unsupported construct
    appears inside a structured block.
    """


class OmpLintError(OmpError):
    """The static linter rejected the target under ``lint="strict"``.

    Raised at decoration time when :mod:`repro.lint` reports at least
    one error-severity finding (an unsynchronized shared write, a read
    of an uninitialised private, an illegal nesting shape, ...).
    ``findings`` carries the full list of
    :class:`repro.lint.Finding` records, warnings included.
    """

    def __init__(self, message: str, findings: list | None = None):
        super().__init__(message)
        self.findings = list(findings or ())


class OmpCompileError(OmpError):
    """The *Compiled*/*CompiledDT* pipeline rejected the code.

    The native-code simulation is conservative: anything it cannot prove
    safe falls back to interpreted execution instead of raising, so this
    error only appears for explicit misuse of compiler options.
    """
