"""The user-declared indirection map: iteration → shared elements.

A :class:`Map` is the one piece of information the runtime cannot
discover on its own — which shared elements (graph vertices, particles,
dictionary shards, matrix rows…) each iteration of an irregular loop
reads or writes through an indirection.  Everything else (partitioning,
conflict analysis, coloring, scheduling) is derived from it by the
inspector in :mod:`repro.plan.planner`.

Maps are immutable after construction; that is what makes the plan
cache (:mod:`repro.plan.cache`) sound — a cached plan is valid for as
long as its map object lives.
"""

from __future__ import annotations

from repro.errors import OmpError


class Map:
    """Which shared elements each iteration of a loop touches.

    ``entries[i]`` is the collection of element identifiers (any
    hashable values) iteration ``i`` updates.  Two iterations *conflict*
    when their entries intersect; the planner guarantees conflicting
    iterations never run concurrently.

    Instances are immutable and hashable by identity — a plan cached
    for a map stays valid for the map's lifetime, and the cache drops
    its plans when the map is garbage collected (it is keyed weakly).
    """

    __slots__ = ("name", "entries", "size", "arity", "__weakref__")

    def __init__(self, name: str, entries) -> None:
        if not isinstance(name, str) or not name:
            raise OmpError("Map needs a non-empty name")
        self.name = name
        self.entries: tuple[tuple, ...] = tuple(
            tuple(entry) for entry in entries)
        self.size = len(self.entries)
        self.arity = max((len(entry) for entry in self.entries),
                         default=0)

    def __len__(self) -> int:
        return self.size

    def __getitem__(self, index: int) -> tuple:
        return self.entries[index]

    def elements(self) -> set:
        """The set of all elements any iteration touches."""
        touched: set = set()
        for entry in self.entries:
            touched.update(entry)
        return touched

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Map({self.name!r}, size={self.size}, "
                f"arity<={self.arity})")
