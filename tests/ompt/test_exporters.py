"""Tests of the Chrome trace, Prometheus, and JSON-report exporters."""

import json

import pytest

from repro.ompt.exporters import (chrome_trace, chrome_trace_events,
                                  metrics_report, prometheus_text,
                                  validate_chrome_trace,
                                  write_chrome_trace)
from repro.ompt.metrics import MetricsTool
from repro.runtime.stats import RegionRecord
from repro.runtime.trace import TraceEvent, TraceLog, TraceSummary


def _sample_events():
    return [
        TraceEvent(10.0, "region_fork", 0, (2,)),
        TraceEvent(10.1, "chunk", 0, (0, 5)),
        TraceEvent(10.2, "chunk", 1, (5, 10)),
        TraceEvent(10.3, "task_submit", 0, (42,)),
        TraceEvent(10.4, "task_start", 1, (42,)),
        TraceEvent(10.5, "task_finish", 1, (42,)),
        TraceEvent(10.6, "barrier_enter", 0, ()),
        TraceEvent(10.7, "barrier_release", 0, (0.1,)),
        TraceEvent(10.8, "region_join", 0, (2,)),
    ]


class TestChromeTrace:
    def test_empty_events(self):
        assert chrome_trace_events([]) == []
        payload = chrome_trace([])
        assert payload["traceEvents"] == []
        assert validate_chrome_trace(payload) == []

    def test_timestamps_rebased_to_microseconds(self):
        rows = chrome_trace_events(_sample_events())
        data_rows = [row for row in rows if row["ph"] != "M"]
        assert min(row["ts"] for row in data_rows) == 0
        join = [row for row in data_rows
                if row["name"] == "parallel region" and row["ph"] == "E"]
        assert join[0]["ts"] == pytest.approx(0.8e6)

    def test_thread_metadata_rows(self):
        rows = chrome_trace_events(_sample_events())
        names = [row for row in rows if row["ph"] == "M"]
        assert {row["tid"] for row in names} == {0, 1}
        assert names[0]["args"]["name"] == "omp thread 0"

    def test_duration_pairs_and_instants(self):
        rows = chrome_trace_events(_sample_events())
        phases = [row["ph"] for row in rows if row["ph"] != "M"]
        assert phases.count("B") == phases.count("E") == 3
        chunks = [row for row in rows if row["name"] == "chunk"]
        assert all(row["ph"] == "i" and row["s"] == "t" for row in chunks)
        assert chunks[0]["args"] == {"low": 0, "high": 5}

    def test_document_carries_drop_count_and_metadata(self):
        payload = chrome_trace(_sample_events(), dropped=3,
                               metadata={"app": "pi"})
        assert payload["otherData"]["dropped_events"] == 3
        assert payload["otherData"]["app"] == "pi"
        assert payload["otherData"]["events"] == 9

    def test_write_round_trip(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(path, _sample_events())
        loaded = json.loads(path.read_text())
        assert validate_chrome_trace(loaded) == []
        assert len(loaded["traceEvents"]) == 11  # 9 events + 2 metadata


class TestSchemaValidator:
    def test_accepts_generated_trace(self):
        assert validate_chrome_trace(chrome_trace(_sample_events())) == []

    def test_rejects_non_object(self):
        assert validate_chrome_trace([1, 2]) != []
        assert validate_chrome_trace({"nope": 1}) != []

    def test_rejects_missing_fields(self):
        payload = {"traceEvents": [{"ph": "B"}]}
        problems = validate_chrome_trace(payload)
        assert any("name" in problem for problem in problems)

    def test_rejects_unknown_phase(self):
        payload = {"traceEvents": [
            {"name": "x", "ph": "Z", "ts": 0, "pid": 1, "tid": 0}]}
        assert any("unknown phase" in problem
                   for problem in validate_chrome_trace(payload))

    def test_rejects_unbalanced_durations(self):
        payload = {"traceEvents": [
            {"name": "x", "ph": "B", "ts": 0, "pid": 1, "tid": 0}]}
        assert any("unclosed" in problem
                   for problem in validate_chrome_trace(payload))
        payload = {"traceEvents": [
            {"name": "x", "ph": "E", "ts": 0, "pid": 1, "tid": 0}]}
        assert any("without matching B" in problem
                   for problem in validate_chrome_trace(payload))

    def test_rejects_bad_instant_scope(self):
        payload = {"traceEvents": [
            {"name": "x", "ph": "i", "s": "q", "ts": 0, "pid": 1,
             "tid": 0}]}
        assert any("instant scope" in problem
                   for problem in validate_chrome_trace(payload))

    def test_rejects_negative_timestamp(self):
        payload = {"traceEvents": [
            {"name": "x", "ph": "i", "ts": -1.0, "pid": 1, "tid": 0}]}
        assert any("negative" in problem
                   for problem in validate_chrome_trace(payload))


class TestPrometheusText:
    def test_counter_and_gauge_rendering(self):
        tool = MetricsTool()
        tool.parallel_begin(0, 4)
        text = prometheus_text(tool.registry)
        assert "# HELP omp_parallel_regions_total " \
               "Parallel regions forked" in text
        assert "# TYPE omp_parallel_regions_total counter" in text
        assert "omp_parallel_regions_total 1" in text
        assert "omp_team_size 4" in text
        assert text.endswith("\n")

    def test_labels_sorted_and_quoted(self):
        tool = MetricsTool()
        tool.work(3, "loop", 0, 7)
        text = prometheus_text(tool.registry)
        assert 'omp_chunks_total{thread="3",wstype="loop"} 1' in text
        assert 'omp_iterations_total{thread="3"} 7' in text

    def test_histogram_exposition(self):
        tool = MetricsTool()
        tool.sync_region(0, "barrier", "release", 0.05)
        text = prometheus_text(tool.registry)
        assert 'omp_sync_wait_seconds_bucket{kind="barrier",le="0.1",' \
               'thread="0"} 1' in text
        assert 'omp_sync_wait_seconds_bucket{kind="barrier",le="+Inf",' \
               'thread="0"} 1' in text
        assert 'omp_sync_wait_seconds_count{kind="barrier",thread="0"} 1' \
            in text
        assert 'omp_sync_wait_seconds_sum{kind="barrier",thread="0"} ' \
               '0.05' in text

    def test_buckets_are_cumulative_in_text(self):
        tool = MetricsTool()
        for wait in (1e-7, 1e-7, 5.0):
            tool.sync_region(0, "barrier", "release", wait)
        text = prometheus_text(tool.registry)
        assert 'le="1e-06",thread="0"} 2' in text
        assert 'le="10.0",thread="0"} 3' in text


class TestMetricsReport:
    def test_empty_report_has_required_keys(self):
        report = metrics_report()
        assert report["per_thread"] == {"chunks": {}, "iterations": {},
                                        "tasks": {}}
        assert report["barrier_wait"]["count"] == 0
        assert report["task_latency"]["count"] == 0
        assert report["regions"] == []
        assert report["imbalance"] == {"max": None, "mean": None}

    def test_registry_sections(self):
        tool = MetricsTool()
        tool.work(0, "loop", 0, 10)
        tool.work(1, "loop", 10, 30)
        tool.sync_region(0, "barrier", "release", 0.5)
        tool.sync_region(1, "barrier", "release", 0.25)
        tool.mutex_acquired(0, "critical", "c", 0.0)
        tool.mutex_acquire(1, "critical", "c")
        tool.mutex_acquired(1, "critical", "c", 0.1)
        report = metrics_report(tool.registry)
        assert report["per_thread"]["chunks"] == {"0": 1, "1": 1}
        assert report["per_thread"]["iterations"] == {"0": 10, "1": 20}
        assert report["barrier_wait"]["count"] == 2
        assert report["barrier_wait"]["sum_s"] == pytest.approx(0.75)
        assert report["barrier_wait"]["per_thread_s"]["0"] \
            == pytest.approx(0.5)
        assert report["mutex"]["acquisitions"] == {"critical": 2}
        assert report["mutex"]["contended"] == {"critical": 1}
        assert report["mutex"]["wait_s"]["critical"] \
            == pytest.approx(0.1)
        assert "metrics" in report

    def test_region_imbalance_section(self):
        records = [RegionRecord(2, [1.0, 1.0]),
                   RegionRecord(2, [1.0, 3.0])]
        report = metrics_report(stats_records=records)
        assert [row["imbalance"] for row in report["regions"]] \
            == [pytest.approx(1.0), pytest.approx(1.5)]
        assert report["imbalance"]["max"] == pytest.approx(1.5)
        assert report["imbalance"]["mean"] == pytest.approx(1.25)

    def test_trace_summary_fallback_and_drop_count(self):
        events = TraceLog([TraceEvent(1.0, "chunk", 0, (0, 4)),
                           TraceEvent(1.1, "chunk", 1, (4, 8))],
                          dropped=6)
        report = metrics_report(trace_summary=TraceSummary(events))
        assert report["per_thread"]["chunks"] == {"0": 1, "1": 1}
        assert report["per_thread"]["iterations"] == {"0": 4, "1": 4}
        assert report["trace"] == {"events": 2, "dropped": 6}

    def test_registry_sections_win_over_trace_fallback(self):
        tool = MetricsTool()
        tool.work(0, "loop", 0, 10)
        events = TraceLog([TraceEvent(1.0, "chunk", 5, (0, 99))])
        report = metrics_report(tool.registry,
                                trace_summary=TraceSummary(events))
        assert report["per_thread"]["chunks"] == {"0": 1}

    def test_report_is_json_serializable(self):
        tool = MetricsTool()
        tool.parallel_begin(0, 2)
        tool.sync_region(0, "barrier", "release", 0.1)
        report = metrics_report(tool.registry,
                                stats_records=[RegionRecord(2, [1.0, 2.0])])
        json.dumps(report)
