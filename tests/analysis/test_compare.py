"""Tests of the sweep-comparison (regression detection) tool."""

import json

import pytest

from repro.analysis.compare import CellDelta, compare, main, render


def write_sweep(path, projected_by_key):
    payload: dict = {}
    for (app, series, threads), projected in projected_by_key.items():
        payload.setdefault(app, []).append({
            "app": app, "series": series, "threads": threads,
            "wall_s": projected, "projected_s": projected,
            "verified": True, "error": None})
    path.write_text(json.dumps(payload), encoding="utf-8")


class TestCompare:
    def test_ratios(self, tmp_path):
        old = tmp_path / "old.json"
        new = tmp_path / "new.json"
        write_sweep(old, {("pi", "pure", 1): 1.0,
                          ("pi", "pure", 4): 0.5})
        write_sweep(new, {("pi", "pure", 1): 2.0,
                          ("pi", "pure", 4): 0.4})
        deltas = {(d.app, d.series, d.threads): d
                  for d in compare(str(old), str(new))}
        assert deltas["pi", "pure", 1].ratio == pytest.approx(2.0)
        assert deltas["pi", "pure", 4].ratio == pytest.approx(0.8)

    def test_missing_cells(self, tmp_path):
        old = tmp_path / "old.json"
        new = tmp_path / "new.json"
        write_sweep(old, {("pi", "pure", 1): 1.0})
        write_sweep(new, {("pi", "hybrid", 1): 1.0})
        deltas = compare(str(old), str(new))
        assert len(deltas) == 2
        assert any(d.ratio is None for d in deltas)

    def test_render_flags_regressions(self):
        deltas = [CellDelta("pi", "pure", 1, 1.0, 2.0),
                  CellDelta("pi", "pure", 4, 1.0, 0.5),
                  CellDelta("pi", "pure", 8, 1.0, 1.05)]
        text, regressions = render(deltas, threshold=1.3)
        assert regressions == 1
        assert "REGRESSION" in text
        assert "improved" in text

    def test_cli_exit_codes(self, tmp_path, capsys):
        old = tmp_path / "old.json"
        new = tmp_path / "new.json"
        write_sweep(old, {("pi", "pure", 1): 1.0})
        write_sweep(new, {("pi", "pure", 1): 1.0})
        main([str(old), str(new)])
        assert "0 regression(s)" in capsys.readouterr().out

        write_sweep(new, {("pi", "pure", 1): 5.0})
        with pytest.raises(SystemExit):
            main([str(old), str(new)])
