"""Thread→place binding for ``OMP_PROC_BIND``.

The :class:`Binder` owns the parsed place list and the bind policy and
is consulted by every team member on entry to a parallel region.  On
Linux it applies the placement with ``os.sched_setaffinity``; platforms
without that call keep the bookkeeping (``omp_get_place_num`` still
answers) but binding degrades to a no-op, as the OpenMP spec permits
for unsupported affinity requests.
"""

from __future__ import annotations

import os
import threading

#: Whether this platform can actually pin threads (Linux: yes).
HAVE_SCHED_AFFINITY = hasattr(os, "sched_setaffinity")


def place_for_member(thread_num: int, team_size: int, nplaces: int,
                     proc_bind: str) -> int:
    """The place index the bind policy assigns to one team member.

    * ``primary`` — every member shares the primary thread's place.
    * ``close`` — consecutive members on consecutive places, wrapping.
    * ``spread`` — members spread across the place list as evenly as
      possible (equivalent to ``close`` once the team outgrows it).
    """
    if nplaces <= 0:
        return -1
    if proc_bind == "primary":
        return 0
    if proc_bind == "spread" and team_size <= nplaces:
        return (thread_num * nplaces) // team_size
    return thread_num % nplaces


class Binder:
    """Applies a proc-bind policy over a place list to the calling thread.

    ``bind_current`` is called from inside ``member()`` on the region's
    hot path, so it caches the last applied place per native thread and
    returns immediately when a pool worker is re-dispatched to the same
    slot.  All failures (CPUs outside the process mask, containers
    denying ``sched_setaffinity``) degrade to unbound, never raise.
    """

    __slots__ = ("places", "proc_bind", "_bound", "_lock")

    def __init__(self, places: tuple[tuple[int, ...], ...],
                 proc_bind: str) -> None:
        self.places = places
        self.proc_bind = proc_bind
        #: ident -> place index last applied to that native thread.
        self._bound: dict[int, int] = {}
        self._lock = threading.Lock()

    @property
    def enabled(self) -> bool:
        """Whether region entry should consult this binder at all."""
        return bool(self.places) and self.proc_bind != "false"

    def bind_current(self, thread_num: int, team_size: int) -> int | None:
        """Pin the calling thread to its policy-assigned place.

        Returns the place index applied, or ``None`` when binding is
        disabled or the platform refused it.
        """
        if not self.enabled:
            return None
        index = place_for_member(thread_num, team_size, len(self.places),
                                 self.proc_bind)
        if index < 0:
            return None
        ident = threading.get_ident()
        if self._bound.get(ident) == index:
            return index
        if HAVE_SCHED_AFFINITY:
            try:
                os.sched_setaffinity(0, self.places[index])
            except (OSError, ValueError):
                # CPUs outside the cgroup mask, or a sandbox denying the
                # syscall: OpenMP says unsupported binding is ignored.
                return None
        with self._lock:
            self._bound[ident] = index
        return index

    def place_num(self) -> int:
        """``omp_get_place_num``: the calling thread's place, or -1."""
        return self._bound.get(threading.get_ident(), -1)
