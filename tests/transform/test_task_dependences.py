"""Tests of the task-dependence prototype (paper Section V sketch).

The dependence key is object identity (the paper's proposed first
step); the tests drive producer/consumer chains whose ordering is only
correct if the dependence graph is honoured.
"""

import pytest

from repro import transform
from repro.cruntime import cruntime
from repro.errors import OmpSyntaxError
from repro.runtime import pure_runtime


def chain_in_out(n):
    from repro import omp
    buffer = [0]
    log = []
    with omp("parallel num_threads(4)"):
        with omp("single"):
            with omp("task depend(out: buffer)"):
                buffer[0] = 1
                log.append("produce")
            with omp("task depend(in: buffer)"):
                log.append(("consume", buffer[0]))
    return log


def two_readers_then_writer(n):
    from repro import omp
    data = [10]
    log = []
    with omp("parallel num_threads(4)"):
        with omp("single"):
            with omp("task depend(out: data)"):
                data[0] = 42
            with omp("task depend(in: data)"):
                with omp("critical"):
                    log.append(("r1", data[0]))
            with omp("task depend(in: data)"):
                with omp("critical"):
                    log.append(("r2", data[0]))
            with omp("task depend(out: data)"):
                with omp("critical"):
                    log.append(("w", len(log)))
                data[0] = 99
    return sorted(log), data[0]


def pipeline_stages(n):
    from repro import omp
    stage_a = [0] * n
    stage_b = [0] * n
    with omp("parallel num_threads(4)"):
        with omp("single"):
            with omp("task depend(out: stage_a)"):
                for i in range(n):
                    stage_a[i] = i + 1
            with omp("task depend(in: stage_a) depend(out: stage_b)"):
                for i in range(n):
                    stage_b[i] = stage_a[i] * 2
            with omp("task depend(inout: stage_b)"):
                for i in range(n):
                    stage_b[i] += 1
    return stage_b


def long_chain(n):
    from repro import omp
    cell = [0]
    with omp("parallel num_threads(4)"):
        with omp("single"):
            for _step in range(n):
                with omp("task depend(inout: cell)"):
                    cell[0] += 1
    return cell[0]


def independent_objects_run_unordered(n):
    from repro import omp
    left = [0]
    right = [0]
    with omp("parallel num_threads(2)"):
        with omp("single"):
            with omp("task depend(out: left)"):
                left[0] = 1
            with omp("task depend(out: right)"):
                right[0] = 2
    return left[0], right[0]


def undeferred_respects_dependences(n):
    from repro import omp
    cell = [0]
    observed = []
    with omp("parallel num_threads(4)"):
        with omp("single"):
            with omp("task depend(out: cell)"):
                cell[0] = 7
            with omp("task if(n > 1000) depend(in: cell)"):
                observed.append(cell[0])
    return observed


def bad_depend_type(n):
    from repro import omp
    x = [0]
    with omp("task depend(sideways: x)"):
        pass


class TestDependences:
    @pytest.fixture(autouse=True, params=["pure", "hybrid"])
    def mode(self, request):
        return request.param

    def test_producer_before_consumer(self, mode):
        fn = transform(chain_in_out, mode)
        for _repeat in range(5):
            assert fn(0) == ["produce", ("consume", 1)]

    def test_readers_see_writer_and_block_next_writer(self, mode):
        fn = transform(two_readers_then_writer, mode)
        for _repeat in range(5):
            log, final = fn(0)
            assert log == [("r1", 42), ("r2", 42), ("w", 2)]
            assert final == 99

    def test_pipeline(self, mode):
        fn = transform(pipeline_stages, mode)
        assert fn(8) == [(i + 1) * 2 + 1 for i in range(8)]

    def test_long_inout_chain_is_sequential(self, mode):
        fn = transform(long_chain, mode)
        assert fn(25) == 25

    def test_independent_objects_complete(self, mode):
        fn = transform(independent_objects_run_unordered, mode)
        assert fn(0) == (1, 2)

    def test_undeferred_task_waits_for_predecessors(self, mode):
        fn = transform(undeferred_respects_dependences, mode)
        for _repeat in range(5):
            assert fn(0) == [7]


class TestDependValidation:
    def test_bad_depend_type_rejected(self):
        with pytest.raises(OmpSyntaxError, match="in/out/inout"):
            transform(bad_depend_type, "hybrid")

    def test_runtime_api_directly(self):
        """The runtime-level API is usable without the decorator."""
        for rt in (pure_runtime, cruntime):
            log = []
            marker = object()

            def region():
                state = rt.single_begin()
                if state.selected:
                    rt.task_submit(lambda: log.append("first"),
                                   depends_out=(marker,))
                    rt.task_submit(lambda: log.append("second"),
                                   depends_in=(marker,))
                    rt.task_submit(lambda: log.append("third"),
                                   depends_out=(marker,))
                rt.single_end(state)

            rt.parallel_run(region, num_threads=4)
            assert log == ["first", "second", "third"]
