"""The OpenMP directive language: lexer, declarative spec, and parser.

Directive strings such as ``"parallel for reduction(+:x) schedule(dynamic,
4)"`` are tokenized by :mod:`repro.directives.lexer`, matched against the
declarative registry in :mod:`repro.directives.spec`, and turned into the
typed model of :mod:`repro.directives.model` by
:mod:`repro.directives.parser`.
"""

from repro.directives.model import Clause, Directive
from repro.directives.parser import parse_directive

__all__ = ["Clause", "Directive", "parse_directive"]
