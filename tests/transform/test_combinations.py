"""Cross-construct combinations the individual suites don't cover."""

import pytest

from repro import transform


def collapse_with_ordered(rows, cols):
    from repro import omp
    log = []
    with omp("parallel for collapse(2) ordered schedule(dynamic, 1) "
             "num_threads(3)"):
        for i in range(rows):
            for j in range(cols):
                value = i * 100 + j
                with omp("ordered"):
                    log.append(value)
    return log


def sections_with_reduction(n):
    from repro import omp
    total = 0
    with omp("parallel num_threads(3)"):
        with omp("sections reduction(+:total)"):
            with omp("section"):
                for i in range(n):
                    total += 1
            with omp("section"):
                for i in range(n):
                    total += 2
            with omp("section"):
                for i in range(n):
                    total += 3
    return total


def single_with_private(n):
    from repro import omp
    scratch = 555
    outcome = []
    with omp("parallel num_threads(3)"):
        with omp("single private(scratch)"):
            scratch = n * 2
            outcome.append(scratch)
    return scratch, outcome


def single_with_firstprivate(n):
    from repro import omp
    seed = 7
    outcome = []
    with omp("parallel num_threads(2)"):
        with omp("single firstprivate(seed)"):
            seed += n
            outcome.append(seed)
    return seed, outcome


def nested_for_in_sections(n):
    from repro import omp
    left = [0] * n
    right = [0] * n
    with omp("parallel sections num_threads(2)"):
        with omp("section"):
            for i in range(n):
                left[i] = i
        with omp("section"):
            for i in range(n):
                right[i] = -i
    return left, right


def reduction_min_max(values):
    from repro import omp
    low = 1e30
    high = -1e30
    count = len(values)
    with omp("parallel for reduction(min: low) reduction(max: high) "
             "num_threads(3)"):
        for i in range(count):
            low = min(low, values[i])
            high = max(high, values[i])
    return low, high


def logical_reductions(flags):
    from repro import omp
    every = True
    some = False
    count = len(flags)
    with omp("parallel for reduction(&&: every) reduction(||: some) "
             "num_threads(2)"):
        for i in range(count):
            every = every and flags[i]
            some = some or flags[i]
    return every, some


def for_inside_task(n):
    from repro import omp
    out = [0] * n
    with omp("parallel num_threads(2)"):
        with omp("single"):
            with omp("task"):
                # A loop inside a task runs on the executing thread's
                # 1-member binding; iterations must all execute.
                for i in range(n):
                    out[i] = i + 5
            omp("taskwait")
    return out


TP_SHARED_STATE = 1000


def tp_writer(n):
    from repro import omp
    omp("threadprivate(TP_SHARED_STATE)")
    TP_SHARED_STATE = n
    return TP_SHARED_STATE


def tp_reader():
    from repro import omp
    omp("threadprivate(TP_SHARED_STATE)")
    return TP_SHARED_STATE


class TestCollapseOrdered:
    def test_ordered_over_linearized_space(self, runtime_mode):
        fn = transform(collapse_with_ordered, runtime_mode)
        assert fn(4, 5) == [i * 100 + j for i in range(4)
                            for j in range(5)]


class TestSectionsReduction:
    def test_reduction_across_sections(self, runtime_mode):
        fn = transform(sections_with_reduction, runtime_mode)
        assert fn(10) == 10 * (1 + 2 + 3)


class TestSinglePrivatization:
    def test_private_in_single(self, runtime_mode):
        fn = transform(single_with_private, runtime_mode)
        outer, outcome = fn(21)
        assert outer == 555
        assert outcome == [42]

    def test_firstprivate_in_single(self, runtime_mode):
        fn = transform(single_with_firstprivate, runtime_mode)
        outer, outcome = fn(3)
        assert outer == 7
        assert outcome == [10]


class TestMoreCombinations:
    def test_loops_in_sections(self, runtime_mode):
        fn = transform(nested_for_in_sections, runtime_mode)
        left, right = fn(12)
        assert left == list(range(12))
        assert right == [-i for i in range(12)]

    def test_min_max_reductions(self, runtime_mode):
        fn = transform(reduction_min_max, runtime_mode)
        values = [5.0, -2.0, 9.5, 0.25, 7.0]
        assert fn(values) == (-2.0, 9.5)

    def test_logical_reductions(self, runtime_mode):
        fn = transform(logical_reductions, runtime_mode)
        assert fn([True, True, False]) == (False, True)
        assert fn([True, True]) == (True, True)
        assert fn([False, False]) == (False, False)

    def test_sequential_loop_inside_task(self, runtime_mode):
        fn = transform(for_inside_task, runtime_mode)
        assert fn(9) == [i + 5 for i in range(9)]


class TestThreadprivateAcrossFunctions:
    def test_same_key_shared_between_decorated_functions(self,
                                                         runtime_mode):
        writer = transform(tp_writer, runtime_mode)
        reader = transform(tp_reader, runtime_mode)
        assert writer(77) == 77
        # Same module-level variable -> same per-thread storage key.
        assert reader() == 77
