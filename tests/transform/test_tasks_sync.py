"""End-to-end tests of task, taskwait, barrier, critical, atomic, flush,
threadprivate, and declare reduction."""

import pytest

from repro import transform
from repro.errors import OmpSyntaxError


def fibonacci_tasks(n):
    from repro import omp
    return _fib_impl(n)


def _fib_impl(n):
    # Plain helper: recursion happens through the decorated wrapper in
    # the paper's Fig. 4; here we keep the whole computation in one
    # transformed function for test simplicity.
    from repro import omp
    result = {}

    def fib(k):
        if k <= 1:
            return k
        out = {}
        with omp("task if(k > 6)"):
            out["a"] = fib(k - 1)
        with omp("task if(k > 6)"):
            out["b"] = fib(k - 2)
        omp("taskwait")
        return out["a"] + out["b"]

    with omp("parallel num_threads(4)"):
        with omp("single"):
            result["value"] = fib(n)
    return result["value"]


def task_shared_results(n):
    from repro import omp
    a = 0
    b = 0
    with omp("parallel num_threads(2)"):
        with omp("single"):
            with omp("task"):
                a = 10
            with omp("task"):
                b = 20
            omp("taskwait")
    return a, b


def task_firstprivate_capture(n):
    from repro import omp
    collected = []
    with omp("parallel num_threads(2)"):
        with omp("single"):
            for i in range(n):
                with omp("task firstprivate(i)"):
                    with omp("critical"):
                        collected.append(i)
            omp("taskwait")
    return sorted(collected)


def task_untied_accepted(n):
    from repro import omp
    done = []
    with omp("parallel num_threads(2)"):
        with omp("single"):
            with omp("task untied"):
                done.append(1)
    return done


def barrier_phases(n):
    from repro import omp
    first = []
    snapshots = []
    with omp("parallel num_threads(4)"):
        with omp("critical"):
            first.append(1)
        omp("barrier")
        with omp("critical"):
            snapshots.append(len(first))
    return snapshots


def atomic_increment(n):
    from repro import omp
    counter = 0
    with omp("parallel num_threads(4)"):
        for _ in range(n):
            with omp("atomic"):
                counter += 1
    return counter


def atomic_subscript(n):
    from repro import omp
    cells = [0, 0]
    with omp("parallel num_threads(4)"):
        for _ in range(n):
            with omp("atomic"):
                cells[0] += 1
    return cells[0]


def atomic_two_statements(n):
    from repro import omp
    counter = 0
    with omp("parallel"):
        with omp("atomic"):
            counter += 1
            counter += 1


def atomic_arbitrary_statement(n):
    from repro import omp
    with omp("parallel"):
        with omp("atomic"):
            print(n)


def critical_named(n):
    from repro import omp
    counter = 0
    with omp("parallel num_threads(4)"):
        for _ in range(n):
            with omp("critical(counter_lock)"):
                counter += 1
    return counter


def flush_statement(n):
    from repro import omp
    x = 0
    with omp("parallel num_threads(2)"):
        omp("flush(x)")
        omp("flush")
    return x


def barrier_inside_for(n):
    from repro import omp
    with omp("parallel"):
        with omp("for"):
            for i in range(n):
                omp("barrier")


def barrier_as_with(n):
    from repro import omp
    with omp("barrier"):
        pass


def parallel_as_call(n):
    from repro import omp
    omp("parallel")


TP_COUNTER = 100


def threadprivate_counter(n):
    from repro import omp, omp_get_thread_num
    omp("threadprivate(TP_COUNTER)")
    values = []
    with omp("parallel num_threads(3)"):
        TP_COUNTER = TP_COUNTER + omp_get_thread_num()
        with omp("critical"):
            values.append(TP_COUNTER)
    return sorted(values), TP_COUNTER


TP_SEED = 7


def threadprivate_copyin(n):
    from repro import omp
    omp("threadprivate(TP_SEED)")
    TP_SEED = n
    got = []
    with omp("parallel num_threads(3) copyin(TP_SEED)"):
        with omp("critical"):
            got.append(TP_SEED)
    return got


def declare_reduction_concat(parts):
    from repro import omp
    omp("declare reduction(concat: omp_out + omp_in) initializer('')")
    text = ""
    with omp("parallel num_threads(3) reduction(concat: text)"):
        text += "x"
    return text


class TestTasks:
    def test_fibonacci(self, runtime_mode):
        fn = transform(fibonacci_tasks, runtime_mode)
        assert fn(12) == 144

    def test_shared_results_visible_after_taskwait(self, runtime_mode):
        fn = transform(task_shared_results, runtime_mode)
        assert fn(0) == (10, 20)

    def test_firstprivate_captures_loop_value(self, runtime_mode):
        fn = transform(task_firstprivate_capture, runtime_mode)
        assert fn(10) == list(range(10))

    def test_untied_is_accepted(self, runtime_mode):
        fn = transform(task_untied_accepted, runtime_mode)
        assert fn(0) == [1]


class TestBarrier:
    def test_barrier_separates_phases(self, runtime_mode):
        fn = transform(barrier_phases, runtime_mode)
        assert fn(0) == [4, 4, 4, 4]

    def test_barrier_inside_worksharing_rejected(self, runtime_mode):
        with pytest.raises(OmpSyntaxError, match="nested inside"):
            transform(barrier_inside_for, runtime_mode)

    def test_barrier_as_with_rejected(self, runtime_mode):
        with pytest.raises(OmpSyntaxError, match="standalone"):
            transform(barrier_as_with, runtime_mode)

    def test_parallel_as_bare_call_rejected(self, runtime_mode):
        with pytest.raises(OmpSyntaxError, match="structured block"):
            transform(parallel_as_call, runtime_mode)


class TestAtomicCritical:
    def test_atomic_counter(self, runtime_mode):
        fn = transform(atomic_increment, runtime_mode)
        assert fn(100) == 400

    def test_atomic_subscript_target(self, runtime_mode):
        fn = transform(atomic_subscript, runtime_mode)
        assert fn(50) == 200

    def test_atomic_requires_single_statement(self, runtime_mode):
        with pytest.raises(OmpSyntaxError, match="exactly one"):
            transform(atomic_two_statements, runtime_mode)

    def test_atomic_rejects_non_update(self, runtime_mode):
        with pytest.raises(OmpSyntaxError, match="update"):
            transform(atomic_arbitrary_statement, runtime_mode)

    def test_named_critical(self, runtime_mode):
        fn = transform(critical_named, runtime_mode)
        assert fn(100) == 400

    def test_flush_is_noop(self, runtime_mode):
        fn = transform(flush_statement, runtime_mode)
        assert fn(0) == 0


class TestThreadprivate:
    def test_per_thread_copies(self, runtime_mode):
        fn = transform(threadprivate_counter, runtime_mode)
        values, main_value = fn(0)
        assert values == [100, 101, 102]
        # The main thread's copy was modified by its own team member
        # (thread 0 adds 0).
        assert main_value == 100

    def test_copyin_broadcasts_master_value(self, runtime_mode):
        fn = transform(threadprivate_copyin, runtime_mode)
        assert fn(55) == [55, 55, 55]


class TestDeclareReduction:
    def test_user_reduction(self, runtime_mode):
        fn = transform(declare_reduction_concat, runtime_mode)
        assert fn(None) == "xxx"
