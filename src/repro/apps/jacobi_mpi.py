"""Hybrid MPI/OpenMP Jacobi solver (the paper's Section IV-C).

MPI distributes the rows of A and the entries of b across ranks
("nodes"); within an iteration each rank updates its block of x with an
OpenMP ``parallel for``, the updated x is exchanged with
``Allgatherv``, and the stopping criterion is evaluated with a global
``Allreduce`` of the residual — exactly the paper's decomposition.

Each MPI rank is an external thread to the OMP4Py runtime and therefore
an independent OpenMP initial thread (paper Section III-C), which is
what makes the per-node thread teams independent.
"""

from __future__ import annotations

import numpy as np

from repro.apps.jacobi import make_system
from repro.decorator import transform
from repro.modes import Mode
from repro.mpi import mpirun
from repro.api import omp

_LOCAL_KERNELS: dict[Mode, object] = {}


def local_update(a_rows, b_rows, x, x_new, rows, offset, n, threads):
    """One Jacobi sweep over this rank's rows; returns the local error.

    ``a_rows``/``b_rows`` hold only the ``rows`` rows starting at global
    row ``offset``; ``x`` is the full current solution and ``x_new`` the
    rank-local output block.
    """
    err = 0.0
    with omp("parallel for reduction(+:err) num_threads(threads)"):
        for i in range(rows):
            s = 0.0
            for j in range(n):
                s += a_rows[i][j] * x[j]
            diag = a_rows[i][offset + i]
            s -= diag * x[offset + i]
            x_new[i] = (b_rows[i] - s) / diag
            err += abs(x_new[i] - x[offset + i])
    return err


def local_update_dt(a_rows, b_rows, x, x_new, rows, offset, n, threads):
    err: float = 0.0
    with omp("parallel for reduction(+:err) num_threads(threads) "
             "schedule(static, 64)"):
        for i in range(rows):
            s: float = 0.0
            for j in range(n):
                s += a_rows[i][j] * x[j]
            diag: float = a_rows[i][offset + i]
            s -= diag * x[offset + i]
            x_new[i] = (b_rows[i] - s) / diag
            err += abs(x_new[i] - x[offset + i])
    return err


def _kernel_for(mode: Mode):
    kernel = _LOCAL_KERNELS.get(mode)
    if kernel is None:
        source = (local_update_dt if mode is Mode.COMPILED_DT
                  else local_update)
        kernel = transform(source, mode)
        _LOCAL_KERNELS[mode] = kernel
    return kernel


def _block_bounds(n: int, size: int, rank: int) -> tuple[int, int]:
    base, extra = divmod(n, size)
    offset = rank * base + min(rank, extra)
    rows = base + (1 if rank < extra else 0)
    return offset, rows


def rank_main(comm, a, b, n, iterations, tol, threads, mode):
    """Per-rank driver (runs in every 'node')."""
    mode = Mode.parse(mode)
    kernel = _kernel_for(mode)
    offset, rows = _block_bounds(n, comm.size, comm.rank)
    a_rows = np.array([a[offset + i] for i in range(rows)], dtype=float)
    b_rows = np.array(b[offset:offset + rows], dtype=float)
    x = np.zeros(n)
    x_next = np.zeros(n)
    x_new = np.zeros(rows)
    for _iteration in range(iterations):
        local_err = kernel(a_rows, b_rows, x, x_new, rows, offset, n,
                           threads)
        comm.Allgatherv(x_new, x_next)
        err = comm.allreduce(local_err)
        x, x_next = x_next, x
        if err < tol:
            break
    return x


def solve(nodes, threads, n, iterations=1000, tol=1e-6, seed=1234,
          mode=Mode.HYBRID):
    """Launch the hybrid solver on ``nodes`` ranks; return x."""
    a, b = make_system(n, seed)
    results = mpirun(nodes, rank_main, a, b, n, iterations, tol, threads,
                     mode)
    return results[0]


def reference(n, seed=1234):
    a, b = make_system(n, seed)
    return np.linalg.solve(np.array(a), np.array(b))


def verify(result, n, seed=1234, atol=1e-4) -> bool:
    return bool(np.allclose(np.asarray(result), reference(n, seed),
                            atol=atol))


SIZES = {
    "test": {"n": 48, "iterations": 200},
    "default": {"n": 256, "iterations": 100},
    "paper": {"n": 3000, "iterations": 1000},
    "paper_dt": {"n": 20000, "iterations": 1000},
}
