"""Miniature MPI implementation (the mpi4py substitute).

The paper's hybrid MPI/OpenMP Jacobi needs the MPI *semantics* — rank
decomposition, ``Allgather`` of the solution vector, ``Allreduce`` of
the residual — under OpenMP threads.  This package provides an
in-process cluster: each rank is a thread with its own communicator
handle, and since every rank is an *external* thread to the OMP4Py
runtimes, each gets its own independent OpenMP context — exactly the
one-process-per-node model of the paper's Fig. 8 (see DESIGN.md for the
substitution rationale).
"""

from repro.mpi.comm import Intracomm, comm_world
from repro.mpi.launcher import mpirun

__all__ = ["Intracomm", "comm_world", "mpirun"]
