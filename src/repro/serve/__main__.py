"""``python -m repro.serve`` — see :mod:`repro.serve.cli`."""

import sys

from repro.serve.cli import main

sys.exit(main())
