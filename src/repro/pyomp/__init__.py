"""PyOMP baseline simulation (the paper's Numba-based comparator).

PyOMP compiles ``@njit`` functions with Numba and supports OpenMP
directives through ``with openmp("...")`` blocks.  This package
reproduces the two properties the paper's comparison rests on:

* **performance** — supported programs run through the same typed
  native-kernel pipeline as OMP4Py's *CompiledDT* mode (the paper finds
  the two within ~5% of each other);
* **envelope** — programs outside Numba's restrictions are rejected at
  decoration time with :class:`PyOMPCompileError`, matching the paper's
  findings: no Python dicts (wordcount), no NetworkX objects
  (clustering coefficient), static scheduling only, no ``nowait``, and
  no ``task`` ``if`` clause (qsort).
"""

from repro.pyomp.api import (PyOMPCompileError, PyOMPInternalError, njit,
                             openmp)

__all__ = ["PyOMPCompileError", "PyOMPInternalError", "njit", "openmp"]
