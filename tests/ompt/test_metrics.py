"""Tests of the metrics registry and the metrics-accumulating tool."""

import threading

import pytest

from repro.ompt.metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                                MetricsTool)
from repro.runtime import pure_runtime


class TestInstruments:
    def test_counter_accumulates(self):
        counter = Counter()
        counter.inc()
        counter.inc(2.5)
        assert counter.sample() == pytest.approx(3.5)
        assert counter.kind == "counter"

    def test_gauge_keeps_last_value(self):
        gauge = Gauge()
        gauge.set(4)
        gauge.set(2)
        assert gauge.sample() == 2
        assert gauge.kind == "gauge"

    def test_histogram_buckets_are_cumulative(self):
        histogram = Histogram(bounds=(1.0, 10.0))
        for value in (0.5, 0.7, 5.0, 50.0):
            histogram.observe(value)
        sample = histogram.sample()
        assert sample["count"] == 4
        assert sample["sum"] == pytest.approx(56.2)
        assert sample["min"] == 0.5
        assert sample["max"] == 50.0
        assert sample["buckets"] == {"1.0": 2, "10.0": 3, "+Inf": 4}

    def test_empty_histogram(self):
        sample = Histogram().sample()
        assert sample["count"] == 0
        assert sample["min"] is None
        assert sample["mean"] == 0.0


class TestRegistry:
    def test_same_name_and_labels_share_instrument(self):
        registry = MetricsRegistry()
        first = registry.counter("hits", thread=1)
        second = registry.counter("hits", thread=1)
        assert first is second

    def test_distinct_labels_get_distinct_instruments(self):
        registry = MetricsRegistry()
        assert registry.counter("hits", thread=1) \
            is not registry.counter("hits", thread=2)

    def test_label_order_does_not_matter(self):
        registry = MetricsRegistry()
        first = registry.counter("x", a=1, b=2)
        second = registry.counter("x", b=2, a=1)
        assert first is second

    def test_help_text_recorded_once(self):
        registry = MetricsRegistry()
        registry.counter("hits", "first description", thread=1)
        registry.counter("hits", "other description", thread=2)
        assert registry.help_text("hits") == "first description"
        assert registry.help_text("unknown") == ""

    def test_collect_sorted_with_labels(self):
        registry = MetricsRegistry()
        registry.counter("b_metric").inc()
        registry.counter("a_metric", thread=3).inc(2)
        rows = list(registry.collect())
        assert [name for name, _l, _i in rows] == ["a_metric", "b_metric"]
        assert rows[0][1] == {"thread": 3}

    def test_as_dict_groups_families(self):
        registry = MetricsRegistry()
        registry.counter("hits", "Hits", thread=0).inc()
        registry.counter("hits", "Hits", thread=1).inc(4)
        families = registry.as_dict()
        assert families["hits"]["type"] == "counter"
        assert families["hits"]["help"] == "Hits"
        assert len(families["hits"]["samples"]) == 2

    def test_concurrent_creation_is_safe(self):
        registry = MetricsRegistry()
        seen = []

        def create(index):
            seen.append(registry.counter("shared", slot=index % 4))

        workers = [threading.Thread(target=create, args=(i,))
                   for i in range(16)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        distinct = {id(instrument) for instrument in seen}
        assert len(distinct) == 4


class TestMetricsTool:
    def test_parallel_callbacks(self):
        tool = MetricsTool()
        tool.parallel_begin(0, 4)
        tool.parallel_begin(0, 2)
        tool.implicit_task(0, "begin", 2)
        tool.implicit_task(0, "end", 2)  # end must not count
        tool.implicit_task(1, "begin", 2)
        registry = tool.registry
        assert registry.counter(
            "omp_parallel_regions_total").sample() == 2
        assert registry.gauge("omp_team_size").sample() == 2
        assert registry.counter(
            "omp_implicit_tasks_total", thread=0).sample() == 1
        assert registry.counter(
            "omp_implicit_tasks_total", thread=1).sample() == 1

    def test_work_counts_chunks_and_iterations(self):
        tool = MetricsTool()
        tool.work(0, "loop", 0, 10)
        tool.work(0, "loop", 10, 15)
        tool.work(1, "sections", 2, 3)
        registry = tool.registry
        assert registry.counter("omp_chunks_total", thread=0,
                                wstype="loop").sample() == 2
        assert registry.counter("omp_chunks_total", thread=1,
                                wstype="sections").sample() == 1
        assert registry.counter("omp_iterations_total",
                                thread=0).sample() == 15
        # Sections don't contribute loop iterations.
        assert registry.counter("omp_iterations_total",
                                thread=1).sample() == 0

    def test_task_lifecycle_histograms(self):
        tool = MetricsTool()
        tool.task_create(0, 7)
        tool.task_schedule(1, 7)
        tool.task_complete(1, 7)
        registry = tool.registry
        latency = registry.histogram("omp_task_latency_seconds")
        duration = registry.histogram("omp_task_duration_seconds")
        assert latency.count == 1
        assert duration.count == 1
        assert tool.pending_tasks() == 0

    def test_unknown_task_ids_are_tolerated(self):
        tool = MetricsTool()
        tool.task_schedule(0, 99)  # never created
        tool.task_complete(0, 99)
        assert tool.registry.counter(
            "omp_tasks_executed_total", thread=0).sample() == 1
        assert tool.registry.histogram(
            "omp_task_duration_seconds").count == 0

    def test_never_started_task_does_not_leak_into_histograms(self):
        tool = MetricsTool()
        tool.task_create(0, 5)
        tool.task_complete(0, 5)  # completed without schedule
        assert tool.registry.histogram(
            "omp_task_duration_seconds").count == 0
        assert tool.pending_tasks() == 0

    def test_sync_region_only_counts_releases(self):
        tool = MetricsTool()
        tool.sync_region(0, "barrier", "enter", None)
        tool.sync_region(0, "barrier", "release", 0.25)
        tool.sync_region(1, "taskwait", "release", 0.5)
        registry = tool.registry
        barrier = registry.histogram("omp_sync_wait_seconds",
                                     kind="barrier", thread=0)
        taskwait = registry.histogram("omp_sync_wait_seconds",
                                      kind="taskwait", thread=1)
        assert barrier.count == 1
        assert barrier.total == pytest.approx(0.25)
        assert taskwait.total == pytest.approx(0.5)

    def test_mutex_contention_accounting(self):
        tool = MetricsTool()
        tool.mutex_acquired(0, "critical", "c", 0.0)
        tool.mutex_acquire(1, "critical", "c")
        tool.mutex_acquired(1, "critical", "c", 0.125)
        registry = tool.registry
        assert registry.counter("omp_mutex_acquisitions_total",
                                kind="critical").sample() == 2
        assert registry.counter("omp_mutex_contended_total",
                                kind="critical").sample() == 1
        assert registry.histogram("omp_mutex_wait_seconds",
                                  kind="critical").total \
            == pytest.approx(0.125)


class TestRuntimeIntegration:
    def test_attached_tool_accumulates_real_run(self):
        tool = MetricsTool()
        pure_runtime.attach_tool(tool)
        try:
            def region():
                bounds = pure_runtime.for_bounds([0, 20, 1])
                pure_runtime.for_init(bounds, kind="static", chunk=5)
                while pure_runtime.for_next(bounds):
                    pass
                pure_runtime.for_end(bounds)

            pure_runtime.parallel_run(region, num_threads=2)
        finally:
            pure_runtime.detach_tool(tool)
        registry = tool.registry
        assert registry.counter(
            "omp_parallel_regions_total").sample() == 1
        total_iterations = sum(
            instrument.value for name, _labels, instrument
            in registry.collect() if name == "omp_iterations_total")
        assert total_iterations == 20
        assert tool.pending_tasks() == 0
