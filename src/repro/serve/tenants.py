"""Per-tenant thread budgets mapped onto ``OMP_PLACES`` partitions.

A tenant is a named principal with a thread budget: the maximum number
of kernel threads its requests may hold concurrently across the fleet.
Budgets do double duty:

* **admission/dispatch** — the :class:`ThreadLedger` charges each
  dispatched job its thread count and the dispatcher defers requests
  that would overdraw their tenant (they stay queued, a throttle is
  counted, nothing is dropped);
* **affinity** — :func:`partition_places` carves the machine's CPUs
  into per-tenant partitions (weighted by budget, via the existing
  :mod:`repro.affinity` layer) and jobs carry their tenant's partition
  as an explicit places list that the worker applies with
  ``OmpRuntime.set_affinity`` before running the kernel — the OpenMP
  ``OMP_PLACES``/``OMP_PROC_BIND`` machinery, scoped per tenant.

On hosts with fewer CPUs than tenants the partitioner degrades the
same way the binder does: tenants share the full place list and only
the budget ledger separates them.
"""

from __future__ import annotations

import dataclasses
import threading

from repro.affinity import available_cpus, format_places
from repro.errors import OmpError


class DuplicateTenantError(OmpError):
    """A tenant name was registered twice (HTTP 409 at the front door)."""


@dataclasses.dataclass(frozen=True)
class Tenant:
    """One registered tenant: budget plus its CPU partition."""

    name: str
    max_threads: int
    places: tuple[tuple[int, ...], ...] = ()
    proc_bind: str = "close"

    @property
    def places_spec(self) -> str | None:
        return format_places(self.places) if self.places else None


def partition_places(budgets: dict[str, int],
                     cpus: tuple[int, ...] | None = None,
                     ) -> dict[str, tuple[tuple[int, ...], ...]]:
    """Carve ``cpus`` into contiguous per-tenant partitions.

    Shares are proportional to each tenant's thread budget with a
    one-CPU floor; each partition becomes a list of single-CPU places
    (so a team of *k* threads binds to *k* distinct CPUs under
    ``close``).  With fewer CPUs than tenants everyone gets the full
    list.
    """
    if cpus is None:
        cpus = available_cpus()
    names = sorted(budgets)
    if not names:
        return {}
    everything = tuple((cpu,) for cpu in cpus)
    if len(cpus) < len(names):
        return {name: everything for name in names}
    total_budget = sum(max(1, budgets[name]) for name in names)
    partitions: dict[str, tuple[tuple[int, ...], ...]] = {}
    cursor = 0
    remaining = len(cpus)
    for index, name in enumerate(names):
        left = len(names) - index
        weight = max(1, budgets[name])
        share = max(1, round(remaining * weight / max(1, total_budget)))
        share = min(share, remaining - (left - 1))
        partitions[name] = tuple(
            (cpu,) for cpu in cpus[cursor:cursor + share])
        cursor += share
        remaining -= share
        total_budget -= weight
    return partitions


class TenantDirectory:
    """Registered tenants plus the in-flight thread ledger.

    Registration recomputes every tenant's partition (budgets weight
    the split), so adding a tenant re-shards the machine — the elastic
    half of "per-tenant thread budgets mapped onto places".
    """

    def __init__(self, cpus: tuple[int, ...] | None = None):
        self._lock = threading.Lock()
        self._cpus = tuple(cpus) if cpus is not None else available_cpus()
        self._tenants: dict[str, Tenant] = {}
        self._inflight: dict[str, int] = {}
        self.throttles: dict[str, int] = {}

    def register(self, name: str, max_threads: int) -> Tenant:
        if not name:
            raise OmpError("tenant name must be non-empty")
        if max_threads < 1:
            raise OmpError(f"tenant {name!r} budget must be >= 1 "
                           f"thread, got {max_threads}")
        with self._lock:
            if name in self._tenants:
                raise DuplicateTenantError(
                    f"tenant {name!r} is already registered")
            self._tenants[name] = Tenant(name, max_threads)
            self._inflight.setdefault(name, 0)
            self.throttles.setdefault(name, 0)
            self._repartition()
            return self._tenants[name]

    def _repartition(self) -> None:
        budgets = {name: tenant.max_threads
                   for name, tenant in self._tenants.items()}
        partitions = partition_places(budgets, self._cpus)
        for name, places in partitions.items():
            old = self._tenants[name]
            self._tenants[name] = dataclasses.replace(old, places=places)

    def get(self, name: str) -> Tenant | None:
        with self._lock:
            return self._tenants.get(name)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._tenants)

    def clamp_threads(self, name: str, threads: int) -> int:
        """Admission-time clamp: a request never exceeds its budget."""
        tenant = self.get(name)
        if tenant is None:
            raise OmpError(f"unknown tenant {name!r}")
        return max(1, min(threads, tenant.max_threads))

    # -- ledger ---------------------------------------------------------

    def can_acquire(self, name: str, threads: int) -> bool:
        """Pure budget check (the single dispatcher thread charges
        with :meth:`try_acquire` after batch assembly)."""
        with self._lock:
            tenant = self._tenants.get(name)
            if tenant is None:
                return False
            return self._inflight[name] + threads <= tenant.max_threads

    def try_acquire(self, name: str, threads: int) -> bool:
        """Charge ``threads`` against the tenant, or defer.

        Returns ``False`` (and counts a throttle) when the charge
        would overdraw the budget; the caller leaves the request
        queued.
        """
        with self._lock:
            tenant = self._tenants.get(name)
            if tenant is None:
                return False
            if self._inflight[name] + threads > tenant.max_threads:
                self.throttles[name] += 1
                return False
            self._inflight[name] += threads
            return True

    def release(self, name: str, threads: int) -> None:
        with self._lock:
            if name in self._inflight:
                self._inflight[name] = max(
                    0, self._inflight[name] - threads)

    def inflight(self, name: str) -> int:
        with self._lock:
            return self._inflight.get(name, 0)

    def snapshot(self) -> list[dict]:
        with self._lock:
            return [{"name": tenant.name,
                     "max_threads": tenant.max_threads,
                     "places": tenant.places_spec,
                     "proc_bind": tenant.proc_bind,
                     "inflight_threads": self._inflight.get(name, 0),
                     "throttles": self.throttles.get(name, 0)}
                    for name, tenant in sorted(self._tenants.items())]
