"""Tests of the Table I static-characteristics extractor."""

import pytest

from repro.analysis.features import summarize, table1_rows


def sample_kernel(n, threads):
    from repro import omp
    total = 0
    with omp("parallel num_threads(threads)"):
        with omp("for reduction(+:total)"):
            for i in range(n):
                total += i
        with omp("single"):
            pass
    return total


def barrier_kernel(n, threads):
    from repro import omp
    with omp("parallel"):
        omp("barrier")


def task_if_kernel(n, threads):
    from repro import omp
    with omp("parallel"):
        with omp("single"):
            with omp("task if(n > 10)"):
                pass


class TestSummarize:
    def test_features_string(self):
        row = summarize("sample", sample_kernel)
        assert row.features == "parallel, for reduction(+), single"
        assert row.synchronization == "Implicit barriers"

    def test_explicit_barrier_detected(self):
        row = summarize("b", barrier_kernel)
        assert row.synchronization == "Explicit barrier"

    def test_task_if_annotation(self):
        row = summarize("t", task_if_kernel)
        assert "task with if clause" in row.features

    def test_directive_list_in_order(self):
        row = summarize("sample", sample_kernel)
        names = [d.name for d in row.directives]
        assert names == ["parallel", "for", "single"]


class TestTableOne:
    """The extracted rows must match the paper's Table I."""

    PAPER = {
        "fft": ("parallel", "for"),
        "jacobi": ("parallel", "for reduction(+)", "single"),
        "lu": ("parallel", "multiple for loops", "single"),
        "md": ("parallel reduction(+) with inner for", "parallel for"),
        "pi": ("parallel for reduction(+)",),
        "qsort": ("parallel", "single", "task with if clause"),
        "bfs": ("parallel", "single", "task"),
    }

    @pytest.fixture(scope="class")
    def rows(self):
        return {row.name: row for row in table1_rows()}

    @pytest.mark.parametrize("name", list(PAPER))
    def test_paper_features_present(self, rows, name):
        extracted = rows[name].features
        for feature in self.PAPER[name]:
            if feature == "for":  # combined "parallel for" also counts
                assert "for" in extracted
            else:
                assert feature in extracted, (
                    f"{name}: {feature!r} not in {extracted!r}")

    def test_synchronization_column(self, rows):
        assert rows["jacobi"].synchronization == "Explicit barrier"
        for name in ("fft", "lu", "md", "pi", "qsort", "bfs"):
            assert rows[name].synchronization == "Implicit barriers"
