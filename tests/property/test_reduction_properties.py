"""Property tests: parallel reductions equal the sequential fold for
any operator, any data, any team size and chunking."""

import math
import operator

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.cruntime import cruntime
from repro.runtime import pure_runtime
from repro.runtime import reduction

RUNTIMES = {"pure": pure_runtime, "cruntime": cruntime}

_FOLDS = {
    "+": operator.add,
    "*": operator.mul,
    "&": operator.and_,
    "|": operator.or_,
    "^": operator.xor,
    "min": min,
    "max": max,
}


def parallel_reduce(rt, op, values, threads, chunk):
    """Emulate the generated reduction pattern by hand."""
    box = {"out": reduction.reduction_init(op)}

    def region():
        local = reduction.reduction_init(op)
        bounds = rt.for_bounds([0, len(values), 1])
        rt.for_init(bounds, kind="dynamic", chunk=chunk)
        while rt.for_next(bounds):
            for index in range(bounds[0], bounds[1]):
                local = reduction.reduction_combine(op, local,
                                                    values[index])
        rt.mutex_lock()
        try:
            box["out"] = reduction.reduction_combine(op, box["out"],
                                                     local)
        finally:
            rt.mutex_unlock()
        rt.for_end(bounds)

    rt.parallel_run(region, num_threads=threads)
    return box["out"]


class TestIntegerOperators:
    @settings(max_examples=50, deadline=None)
    @given(op=st.sampled_from(["+", "*", "&", "|", "^", "min", "max"]),
           values=st.lists(st.integers(-100, 100), max_size=40),
           threads=st.integers(1, 4), chunk=st.integers(1, 7),
           which=st.sampled_from(["pure", "cruntime"]))
    def test_matches_sequential_fold(self, op, values, threads, chunk,
                                     which):
        expected = reduction.reduction_init(op)
        for value in values:
            expected = _FOLDS[op](expected, value)
        result = parallel_reduce(RUNTIMES[which], op, values, threads,
                                 chunk)
        assert result == expected

    @settings(max_examples=30, deadline=None)
    @given(values=st.lists(st.booleans(), max_size=30),
           threads=st.integers(1, 4))
    def test_logical_operators(self, values, threads):
        conj = parallel_reduce(pure_runtime, "&&", values, threads, 3)
        disj = parallel_reduce(pure_runtime, "||", values, threads, 3)
        assert conj == all(values)
        assert disj == any(values)


class TestFloatSum:
    @settings(max_examples=30, deadline=None)
    @given(values=st.lists(
        st.floats(-1e6, 1e6, allow_nan=False), max_size=40),
        threads=st.integers(1, 4))
    def test_sum_within_fp_tolerance(self, values, threads):
        result = parallel_reduce(pure_runtime, "+", values, threads, 4)
        expected = math.fsum(values)
        assert result == pytest.approx(expected, rel=1e-9, abs=1e-6)


class TestDeclaredReduction:
    @settings(max_examples=25, deadline=None)
    @given(values=st.lists(st.lists(st.integers(0, 9), max_size=3),
                           max_size=15),
           threads=st.integers(1, 4))
    def test_list_concat_collects_everything(self, values, threads):
        # Concatenation is not commutative, but the multiset of
        # collected elements must always match.
        try:
            reduction.declare_reduction(
                "cat_prop", lambda out, val: out + val, list)
        except Exception:
            pass  # already declared by a previous example
        result = parallel_reduce(pure_runtime, "cat_prop", values,
                                 threads, 2)
        expected = [item for sub in values for item in sub]
        assert sorted(result) == sorted(expected)
