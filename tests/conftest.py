"""Shared fixtures: compiling directive-bearing functions from source.

The ``@omp`` decorator reads source via :mod:`inspect`, so dynamically
built test functions must live in a real file.  ``omp_compile`` writes
the source into a per-test module under ``tmp_path``, imports it, and
transforms the requested function for a given mode.
"""

from __future__ import annotations

import importlib.util
import itertools
import sys

import pytest

from repro import Mode, transform

_MODULE_COUNTER = itertools.count()


def pytest_collection_modifyitems(config, items):
    """Auto-skip ``nogil``-marked tests on the gil backend.

    The marker (registered in pyproject.toml) tags tests whose
    assertions only hold with true thread parallelism — projected ==
    measured convergence, genuine wall-time speedup.  On a stock
    interpreter they would fail by design, so they skip; the 3.13t CI
    leg runs them for real.
    """
    from repro.runtime.gilstate import current_backend
    if current_backend().measures_parallelism:
        return
    skip = pytest.mark.skip(
        reason="requires the nogil backend (free-threaded interpreter)")
    for item in items:
        if "nogil" in item.keywords:
            item.add_marker(skip)


@pytest.fixture
def omp_compile(tmp_path):
    """Factory: ``omp_compile(source, name, mode=Mode.HYBRID)``.

    ``source`` must define a plain function ``name`` (the fixture adds
    the needed imports on top); the transformed function is returned.
    """

    def compile_source(source: str, name: str, mode=Mode.HYBRID, **kwargs):
        index = next(_MODULE_COUNTER)
        module_name = f"omp_test_module_{index}"
        path = tmp_path / f"{module_name}.py"
        path.write_text(
            "from repro import *\nimport math\n\n" + source,
            encoding="utf-8")
        spec = importlib.util.spec_from_file_location(module_name, path)
        module = importlib.util.module_from_spec(spec)
        sys.modules[module_name] = module
        try:
            spec.loader.exec_module(module)
            return transform(getattr(module, name), mode, **kwargs)
        finally:
            sys.modules.pop(module_name, None)

    return compile_source


@pytest.fixture(params=[Mode.PURE, Mode.HYBRID],
                ids=["pure", "hybrid"])
def runtime_mode(request):
    """Both interpreted modes — runtime-semantics tests run under each."""
    return request.param


@pytest.fixture(params=list(Mode), ids=[m.value for m in Mode])
def any_mode(request):
    """All four execution modes."""
    return request.param
