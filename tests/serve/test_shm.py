"""Shared-memory data plane: registry, handles, tracker discipline."""

from __future__ import annotations

from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.errors import OmpError
from repro.serve.shm import (
    ArrayHandle,
    AttachedArrays,
    ShmRegistry,
    attach_array,
    attach_unregister,
    leaked_segments,
)


@pytest.fixture
def registry():
    reg = ShmRegistry(tag="test")
    yield reg
    reg.close_all()


def test_create_view_roundtrip(registry):
    data = np.arange(257, dtype=np.float64)
    handle = registry.create_array(data)
    view = registry.view(handle)
    assert np.array_equal(view, data)
    # The view aliases the segment, not the source array.
    view[0] = -1.0
    assert registry.view(handle)[0] == -1.0
    assert data[0] == 0.0


def test_handle_wire_roundtrip():
    handle = ArrayHandle(segment="o4pserve_x", dtype="<f8",
                         shape=(4, 3), container="list",
                         read_only=True)
    again = ArrayHandle.from_wire(handle.to_wire())
    assert again == handle
    assert again.nbytes == 4 * 3 * 8


def test_attach_zero_copy_vs_private_copy(registry):
    data = np.arange(128, dtype=np.float64)
    ro = registry.create_array(data, read_only=True)
    rw = registry.create_array(data, read_only=False)
    attached = AttachedArrays()
    try:
        ro_view = attached.materialize(ro)
        rw_copy = attached.materialize(rw)
        ro_view[0] = 42.0
        rw_copy[0] = 42.0
        assert registry.view(ro)[0] == 42.0  # zero-copy
        assert registry.view(rw)[0] == 0.0   # private copy
    finally:
        attached.close_all()


def test_release_unlinks_segment(registry):
    handle = registry.create_array(np.zeros(64))
    assert handle.segment in leaked_segments()
    registry.release(handle.segment)
    assert handle.segment not in leaked_segments()
    with pytest.raises(OmpError):
        registry.view(handle)


def test_creator_reattach_keeps_registration(registry):
    # The creator's own pid is embedded in the name; re-attaching from
    # the creator process must not strip the create-registration.
    handle = registry.create_array(np.zeros(64))
    shm, _view = attach_array(handle)
    try:
        assert attach_unregister(shm) is False
    finally:
        shm.close()


def test_inherited_tracker_is_left_alone(registry, monkeypatch):
    # Simulate a spawned worker: the tracker has a borrowed fd and no
    # pid of its own.  attach_unregister must refuse to touch it even
    # for a foreign-named segment.
    from multiprocessing import resource_tracker
    handle = registry.create_array(np.zeros(64))
    shm = shared_memory.SharedMemory(name=handle.segment)
    try:
        tracker = resource_tracker._resource_tracker
        monkeypatch.setattr(tracker, "_fd", 99, raising=False)
        monkeypatch.setattr(tracker, "_pid", None, raising=False)
        assert attach_unregister(shm) is False
    finally:
        shm.close()


def test_independent_attacher_unregisters():
    # A segment whose name embeds a *different* pid looks like another
    # process's property: the attacher must drop its own tracker claim
    # so its exit does not unlink data the owner still serves.
    name = "o4pserve_test_999999_77"
    owner = shared_memory.SharedMemory(create=True, size=64, name=name)
    try:
        other = shared_memory.SharedMemory(name=name)
        try:
            assert attach_unregister(other) is True
        finally:
            other.close()
    finally:
        owner.close()
        owner.unlink()
    assert name not in leaked_segments()


def test_close_all_leaves_nothing(registry):
    for _ in range(3):
        registry.create_array(np.zeros(64))
    names = registry.names()
    assert len(names) == 3
    registry.close_all()
    assert registry.names() == []
    assert not set(names) & set(leaked_segments())
