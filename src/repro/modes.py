"""Execution modes of the OMP4Py reproduction.

The paper defines four modes (Section III-B and IV):

* **Pure** — generated code calls the pure-Python ``runtime``.
* **Hybrid** — generated code calls the native ``cruntime`` (here: the
  atomics-based runtime in :mod:`repro.cruntime`); user code stays
  interpreted.  This is the default.
* **Compiled** — Hybrid plus compilation of the user's code.  In the
  paper this is Cython; here it is the AST optimization pipeline in
  :mod:`repro.compiler`.
* **CompiledDT** — Compiled plus explicit ``int``/``float`` data-type
  annotations, which enable the typed NumPy-kernel lowering.

Orthogonal to the four modes is the **execution backend**
(:mod:`repro.runtime.gilstate`): every mode runs unchanged on either a
GIL or a free-threaded interpreter, but the backend decides whether the
analysis stack reports projected or measured wall time.
:func:`execution_backend` is the mode layer's accessor.
"""

from __future__ import annotations

import enum

from repro import env
from repro.errors import OmpError


class Mode(enum.Enum):
    """One of the four execution modes described in the paper."""

    PURE = "pure"
    HYBRID = "hybrid"
    COMPILED = "compiled"
    COMPILED_DT = "compileddt"

    @property
    def uses_cruntime(self) -> bool:
        return self is not Mode.PURE

    @property
    def compiles_user_code(self) -> bool:
        return self in (Mode.COMPILED, Mode.COMPILED_DT)

    @classmethod
    def parse(cls, value: "Mode | str | int") -> "Mode":
        """Accept a ``Mode``, its name, or the paper's numeric CLI code.

        The artifact appendix numbers the modes 0 (Pure) through
        3 (CompiledDT); ``-1`` selects the PyOMP baseline and is rejected
        here because PyOMP is a separate package.
        """
        if isinstance(value, cls):
            return value
        if isinstance(value, int) and not isinstance(value, bool):
            try:
                return _NUMERIC_MODES[value]
            except KeyError:
                raise OmpError(f"unknown mode number {value}") from None
        text = str(value).strip().lower().replace("_", "").replace("-", "")
        for mode in cls:
            if mode.value == text:
                return mode
        if text in ("dt", "compiledwithdatatypes"):
            return cls.COMPILED_DT
        raise OmpError(f"unknown execution mode {value!r}")


_NUMERIC_MODES = {
    0: Mode.PURE,
    1: Mode.HYBRID,
    2: Mode.COMPILED,
    3: Mode.COMPILED_DT,
}

#: Order used by the reports, matching the paper's figures.
ALL_MODES = (Mode.PURE, Mode.HYBRID, Mode.COMPILED, Mode.COMPILED_DT)


def default_mode() -> Mode:
    """Session default: ``OMP4PY_MODE`` or *Hybrid* (as in the paper)."""
    return Mode.parse(env.decorator_default("mode", Mode.HYBRID.value))


def execution_backend():
    """The process-wide execution backend (``Backend.GIL``/``NOGIL``).

    Imported lazily so the mode table stays importable in contexts that
    never touch the runtime (the lint CLI, directive parsing).
    """
    from repro.runtime.gilstate import current_backend
    return current_backend()
