"""Environment-variable handling for OpenMP ICVs and decorator defaults.

Two families of variables are honoured, mirroring the paper:

* ``OMP_*`` — the standard OpenMP environment variables that seed the
  initial values of internal control variables (ICVs):
  ``OMP_NUM_THREADS``, ``OMP_SCHEDULE``, ``OMP_DYNAMIC``, ``OMP_NESTED``,
  ``OMP_THREAD_LIMIT``, ``OMP_MAX_ACTIVE_LEVELS``, ``OMP_STACKSIZE``
  (accepted and recorded but without effect on Python threads),
  ``OMP_WAIT_POLICY`` (``active`` spins briefly before parking at the
  pool's fork/join points, ``passive`` parks immediately — see
  :mod:`repro.runtime.pool`), ``OMP_PLACES`` and ``OMP_PROC_BIND``
  (thread affinity — see :mod:`repro.affinity` and docs/affinity.md).
* ``OMP4PY_*`` — defaults for the ``omp`` decorator arguments
  (``OMP4PY_CACHE``, ``OMP4PY_DUMP``, ``OMP4PY_DEBUG``, ``OMP4PY_COMPILE``,
  ``OMP4PY_FORCE``, ``OMP4PY_MODE``, ``OMP4PY_LINT``), plus the
  observability knobs ``OMP4PY_TRACE`` and ``OMP4PY_METRICS`` that
  auto-instrument every runtime bound by the ``@omp`` decorator (see
  :mod:`repro.ompt.auto` and docs/observability.md),
  ``OMP4PY_METRICS_PORT`` serving live ``/metrics`` (Prometheus),
  ``/explain`` (DAG summary) and ``/profile`` (sampling profile) over
  HTTP while the workload runs (:mod:`repro.explain.live`), the
  sampling-profiler knobs ``OMP4PY_PROFILE`` (truthy, or an output
  path for the folded stacks) and ``OMP4PY_PROFILE_HZ`` (sampling
  rate, default 200 Hz — see :mod:`repro.sampling`), and the hang
  diagnostics knobs ``OMP4PY_FLIGHT`` (flight recorder: truthy,
  a ring capacity, an output path, or ``capacity:path``),
  ``OMP4PY_WATCHDOG`` (stall watchdog: truthy for the default
  interval, an interval in seconds, or ``interval:report-path``) and
  ``OMP4PY_WATCHDOG_EXIT`` (terminate with the doctor exit code on a
  deadlock verdict — see :mod:`repro.diagnostics.auto`), and the
  hot-team pool knobs ``OMP4PY_HOT_TEAMS`` (``0`` restores the
  spawn-per-region fork/join path) and ``OMP4PY_POOL_IDLE_TIMEOUT``
  (seconds a parked pool worker waits for work before trimming itself),
  and ``OMP4PY_BACKEND`` (``auto``/``gil``/``nogil`` — the execution
  backend selecting projected vs measured wall-time accounting; see
  :mod:`repro.runtime.gilstate` and docs/projection.md), and the
  serving knobs ``OMP4PY_SERVE_PORT``, ``OMP4PY_SERVE_WORKERS`` and
  ``OMP4PY_SERVE_QUEUE`` — defaults for ``python -m repro.serve``
  (see :mod:`repro.serve` and docs/serving.md).
"""

from __future__ import annotations

import dataclasses
import os

from repro.errors import OmpError

#: Scheduling kinds accepted by ``OMP_SCHEDULE`` and ``schedule(...)``.
SCHEDULE_KINDS = ("static", "dynamic", "guided", "auto", "runtime")

_TRUE_STRINGS = frozenset({"1", "true", "yes", "on"})
_FALSE_STRINGS = frozenset({"0", "false", "no", "off"})


def _parse_bool(name: str, value: str) -> bool:
    lowered = value.strip().lower()
    if lowered in _TRUE_STRINGS:
        return True
    if lowered in _FALSE_STRINGS:
        return False
    raise OmpError(f"{name} must be a boolean value, got {value!r}")


def _parse_positive_int(name: str, value: str) -> int:
    try:
        parsed = int(value)
    except ValueError:
        raise OmpError(f"{name} must be an integer, got {value!r}") from None
    if parsed <= 0:
        raise OmpError(f"{name} must be positive, got {parsed}")
    return parsed


def parse_schedule(value: str) -> tuple[str, int | None]:
    """Parse an ``OMP_SCHEDULE``-style string like ``"dynamic,4"``.

    Returns ``(kind, chunk)`` where ``chunk`` is ``None`` when omitted.
    ``runtime`` is rejected here because an ICV cannot point at itself.
    """
    text = value.strip().lower()
    chunk: int | None = None
    if "," in text:
        kind_text, chunk_text = text.split(",", 1)
        kind = kind_text.strip()
        chunk = _parse_positive_int("OMP_SCHEDULE chunk", chunk_text.strip())
    else:
        kind = text
    if kind not in SCHEDULE_KINDS or kind == "runtime":
        raise OmpError(f"invalid OMP_SCHEDULE kind {kind!r}")
    return kind, chunk


def available_cpus() -> int:
    """CPUs actually usable by this process.

    Prefers ``os.process_cpu_count()`` (3.13+), which honours CPU
    affinity masks and cgroup-style restrictions, over the raw machine
    count — on a shared CI runner the two can differ wildly, and team
    sizing / ``omp_get_num_procs`` must not oversubscribe the cores the
    scheduler will actually grant.  Falls back to the affinity mask and
    finally ``os.cpu_count()`` on older interpreters.
    """
    process_count = getattr(os, "process_cpu_count", None)
    if process_count is not None:
        count = process_count()
        if count:
            return count
    affinity = getattr(os, "sched_getaffinity", None)
    if affinity is not None:
        try:
            return len(affinity(0)) or 1
        except OSError:  # pragma: no cover - platform without affinity
            pass
    return os.cpu_count() or 1


def default_num_threads() -> int:
    """Initial ``nthreads-var``: ``OMP_NUM_THREADS`` or the CPU count."""
    raw = os.environ.get("OMP_NUM_THREADS")
    if raw:
        # OpenMP allows a comma-separated list (one value per nesting
        # level); we honour the first entry like most implementations.
        return _parse_positive_int("OMP_NUM_THREADS", raw.split(",")[0])
    return available_cpus()


def default_schedule() -> tuple[str, int | None]:
    """Initial ``run-sched-var`` from ``OMP_SCHEDULE`` (default static)."""
    raw = os.environ.get("OMP_SCHEDULE")
    if raw:
        return parse_schedule(raw)
    return "static", None


def default_dynamic() -> bool:
    raw = os.environ.get("OMP_DYNAMIC")
    return _parse_bool("OMP_DYNAMIC", raw) if raw else False


def default_nested() -> bool:
    raw = os.environ.get("OMP_NESTED")
    return _parse_bool("OMP_NESTED", raw) if raw else False


def default_thread_limit() -> int:
    raw = os.environ.get("OMP_THREAD_LIMIT")
    if raw:
        return _parse_positive_int("OMP_THREAD_LIMIT", raw)
    return 2**31 - 1


def default_max_active_levels() -> int:
    raw = os.environ.get("OMP_MAX_ACTIVE_LEVELS")
    if raw:
        return _parse_positive_int("OMP_MAX_ACTIVE_LEVELS", raw)
    return 2**31 - 1


#: Wait policies accepted by ``OMP_WAIT_POLICY``.
WAIT_POLICIES = ("active", "passive")

#: ``OMP_PROC_BIND`` values after normalization (``master`` is the
#: deprecated spelling of ``primary``; ``true`` binds like ``close``).
PROC_BIND_KINDS = ("false", "primary", "close", "spread")


def default_wait_policy() -> str:
    """Initial ``wait-policy-var`` from ``OMP_WAIT_POLICY``.

    ``passive`` (the default) parks pool workers on events immediately;
    ``active`` spins briefly first, trading CPU for fork/join latency.
    """
    raw = os.environ.get("OMP_WAIT_POLICY")
    if not raw:
        return "passive"
    policy = raw.strip().lower()
    if policy not in WAIT_POLICIES:
        raise OmpError(f"OMP_WAIT_POLICY must be one of {WAIT_POLICIES}, "
                       f"got {raw!r}")
    return policy


def places_spec() -> str | None:
    """Raw ``OMP_PLACES`` value, or ``None`` when unset/empty.

    Parsing lives in :func:`repro.affinity.places.parse_places`; this
    only decides whether affinity is requested at all.
    """
    raw = os.environ.get("OMP_PLACES")
    if raw is None or not raw.strip():
        return None
    return raw.strip()


def default_proc_bind() -> str:
    """Initial ``bind-var`` from ``OMP_PROC_BIND``, normalized.

    ``master`` (deprecated) maps to ``primary`` and ``true`` to
    ``close``.  Per OpenMP 4.0, setting ``OMP_PLACES`` without
    ``OMP_PROC_BIND`` implies binding, so the default is ``close`` when
    places are defined and ``false`` otherwise.
    """
    raw = os.environ.get("OMP_PROC_BIND")
    if not raw:
        return "close" if places_spec() is not None else "false"
    policy = raw.strip().lower()
    if policy == "master":
        policy = "primary"
    elif policy == "true":
        policy = "close"
    if policy not in PROC_BIND_KINDS:
        raise OmpError(
            f"OMP_PROC_BIND must be one of "
            f"{PROC_BIND_KINDS + ('true', 'master')}, got {raw!r}")
    return policy


#: Values accepted by ``OMP4PY_BACKEND``.
BACKEND_SPECS = ("auto", "gil", "nogil")


def backend_spec() -> str:
    """``OMP4PY_BACKEND``: the execution-backend request, normalized.

    ``auto`` (the default) detects free-threading at import
    (:mod:`repro.runtime.gilstate`); ``gil`` forces the projection
    accounting even on a free-threaded interpreter; ``nogil`` asserts
    true parallelism and is an error on a GIL-enabled interpreter (the
    assertion failing loudly beats silently reporting projected numbers
    as measured ones).
    """
    raw = os.environ.get("OMP4PY_BACKEND")
    if raw is None or not raw.strip():
        return "auto"
    spec = raw.strip().lower()
    if spec not in BACKEND_SPECS:
        raise OmpError(f"OMP4PY_BACKEND must be one of {BACKEND_SPECS}, "
                       f"got {raw!r}")
    return spec


def default_hot_teams() -> bool:
    """``OMP4PY_HOT_TEAMS``: keep region workers parked between regions
    (the default); ``0`` restores the spawn-per-region fork/join path."""
    raw = os.environ.get("OMP4PY_HOT_TEAMS")
    return _parse_bool("OMP4PY_HOT_TEAMS", raw) if raw else True


def pool_idle_timeout() -> float:
    """``OMP4PY_POOL_IDLE_TIMEOUT``: seconds a parked pool worker waits
    for its next region before trimming itself (default 30)."""
    raw = os.environ.get("OMP4PY_POOL_IDLE_TIMEOUT")
    if not raw:
        return 30.0
    try:
        timeout = float(raw)
    except ValueError:
        raise OmpError(f"OMP4PY_POOL_IDLE_TIMEOUT must be a number of "
                       f"seconds, got {raw!r}") from None
    if timeout <= 0:
        raise OmpError(f"OMP4PY_POOL_IDLE_TIMEOUT must be positive, "
                       f"got {timeout}")
    return timeout


def _observability_spec(name: str) -> str | None:
    """Parse an on/off/path observability knob.

    Returns ``None`` when unset or explicitly off, the sentinel ``"1"``
    for bare enablement, or the output path the artifact should be
    written to at interpreter exit.
    """
    raw = os.environ.get(name)
    if raw is None:
        return None
    value = raw.strip()
    if not value or value.lower() in _FALSE_STRINGS:
        return None
    if value.lower() in _TRUE_STRINGS:
        return "1"
    return value


def trace_spec() -> str | None:
    """``OMP4PY_TRACE``: ``None`` / ``"1"`` / an output path."""
    return _observability_spec("OMP4PY_TRACE")


def metrics_spec() -> str | None:
    """``OMP4PY_METRICS``: ``None`` / ``"1"`` / an output path."""
    return _observability_spec("OMP4PY_METRICS")


def profile_spec() -> str | None:
    """``OMP4PY_PROFILE``: ``None`` / ``"1"`` / an output path.

    Arms the sampling profiler (:mod:`repro.sampling`) on every
    runtime the ``@omp`` decorator binds; a path writes the folded
    stacks at interpreter exit (speedscope JSON for ``.json`` paths,
    collapsed text otherwise).
    """
    return _observability_spec("OMP4PY_PROFILE")


#: Default sampling rate: 200 Hz == one sample per 5 ms.
DEFAULT_PROFILE_HZ = 200.0


def profile_hz() -> float:
    """``OMP4PY_PROFILE_HZ``: sampling rate in samples per second.

    Default 200 (5 ms interval); capped at 10 kHz because a pure-Python
    sampler cannot honour more and would only burn the GIL trying.
    """
    raw = os.environ.get("OMP4PY_PROFILE_HZ")
    if raw is None or not raw.strip():
        return DEFAULT_PROFILE_HZ
    try:
        hz = float(raw)
    except ValueError:
        raise OmpError(f"OMP4PY_PROFILE_HZ must be a sampling rate in "
                       f"Hz, got {raw!r}") from None
    if hz <= 0:
        raise OmpError(f"OMP4PY_PROFILE_HZ must be positive, got {hz}")
    return min(hz, 10_000.0)


def metrics_port() -> int | None:
    """``OMP4PY_METRICS_PORT``: serve live ``/metrics`` + ``/explain``.

    ``None`` when unset/off; otherwise a TCP port for the in-process
    observability endpoint (:mod:`repro.explain.live`).  ``0`` binds an
    ephemeral port (announced on stderr by the auto-instrument path).
    """
    raw = os.environ.get("OMP4PY_METRICS_PORT")
    if raw is None:
        return None
    value = raw.strip()
    # "0" is a valid request (bind an ephemeral port), so unlike the
    # other knobs only the word-y false spellings disable this one.
    if not value or value.lower() in ("false", "no", "off"):
        return None
    try:
        port = int(value)
    except ValueError:
        raise OmpError(f"OMP4PY_METRICS_PORT must be a TCP port number, "
                       f"got {raw!r}") from None
    if not 0 <= port <= 65535:
        raise OmpError(f"OMP4PY_METRICS_PORT must be in [0, 65535], "
                       f"got {port}")
    return port


@dataclasses.dataclass(frozen=True)
class FlightSpec:
    """Parsed ``OMP4PY_FLIGHT``: ring capacity and optional dump path."""

    capacity: int = 256
    path: str | None = None


@dataclasses.dataclass(frozen=True)
class WatchdogSpec:
    """Parsed ``OMP4PY_WATCHDOG`` (+ ``OMP4PY_WATCHDOG_EXIT``)."""

    interval: float = 5.0
    path: str | None = None
    exit_on_deadlock: bool = False


def flight_spec() -> FlightSpec | None:
    """``OMP4PY_FLIGHT``: ``None`` when off, else capacity and path.

    Accepted forms: a true/false string, a ring capacity (``512``), a
    dump path (``flight.json``), or ``capacity:path``.
    """
    raw = os.environ.get("OMP4PY_FLIGHT")
    if raw is None:
        return None
    value = raw.strip()
    if not value or value.lower() in _FALSE_STRINGS:
        return None
    if value.lower() in _TRUE_STRINGS:
        return FlightSpec()
    head, _sep, tail = value.partition(":")
    try:
        capacity = int(head)
    except ValueError:
        return FlightSpec(path=value)
    if capacity <= 0:
        raise OmpError(f"OMP4PY_FLIGHT capacity must be positive, "
                       f"got {capacity}")
    return FlightSpec(capacity=capacity, path=tail or None)


def watchdog_spec() -> WatchdogSpec | None:
    """``OMP4PY_WATCHDOG``: ``None`` when off, else interval/path/exit.

    Accepted forms: a true/false string (default 5 s interval), an
    interval in seconds (``0.5``), or ``interval:report-path``.  A
    truthy ``OMP4PY_WATCHDOG_EXIT`` makes a deadlock verdict terminate
    the process with :data:`repro.diagnostics.watchdog.DEADLOCK_EXIT_CODE`.
    """
    raw = os.environ.get("OMP4PY_WATCHDOG")
    if raw is None:
        return None
    value = raw.strip()
    if not value or value.lower() in _FALSE_STRINGS:
        return None
    exit_raw = os.environ.get("OMP4PY_WATCHDOG_EXIT")
    exit_on_deadlock = bool(
        exit_raw) and _parse_bool("OMP4PY_WATCHDOG_EXIT", exit_raw)
    if value.lower() in _TRUE_STRINGS:
        return WatchdogSpec(exit_on_deadlock=exit_on_deadlock)
    head, _sep, tail = value.partition(":")
    try:
        interval = float(head)
    except ValueError:
        raise OmpError(f"OMP4PY_WATCHDOG must be an interval in seconds "
                       f"(optionally ':report-path'), got {raw!r}") from None
    if interval <= 0:
        raise OmpError(f"OMP4PY_WATCHDOG interval must be positive, "
                       f"got {interval}")
    return WatchdogSpec(interval=interval, path=tail or None,
                        exit_on_deadlock=exit_on_deadlock)


#: Default TCP port for ``python -m repro.serve``.
DEFAULT_SERVE_PORT = 8571


def serve_port() -> int:
    """``OMP4PY_SERVE_PORT``: default port for the serving front door.

    ``0`` binds an ephemeral port (announced on stdout by the CLI).
    """
    raw = os.environ.get("OMP4PY_SERVE_PORT")
    if raw is None or not raw.strip():
        return DEFAULT_SERVE_PORT
    try:
        port = int(raw.strip())
    except ValueError:
        raise OmpError(f"OMP4PY_SERVE_PORT must be a TCP port number, "
                       f"got {raw!r}") from None
    if not 0 <= port <= 65535:
        raise OmpError(f"OMP4PY_SERVE_PORT must be in [0, 65535], "
                       f"got {port}")
    return port


def serve_workers() -> int:
    """``OMP4PY_SERVE_WORKERS``: default worker-process count.

    Defaults to ``min(4, cpu count)`` — one warm runtime per worker is
    the unit of serving parallelism.
    """
    raw = os.environ.get("OMP4PY_SERVE_WORKERS")
    if raw is None or not raw.strip():
        return max(1, min(4, available_cpus()))
    return _parse_positive_int("OMP4PY_SERVE_WORKERS", raw.strip())


def serve_queue() -> int:
    """``OMP4PY_SERVE_QUEUE``: default admission-queue capacity.

    ``0`` is valid and means hand-off only: accept a request only when
    an idle worker can take it immediately, shed everything else.
    """
    raw = os.environ.get("OMP4PY_SERVE_QUEUE")
    if raw is None or not raw.strip():
        return 16
    try:
        capacity = int(raw.strip())
    except ValueError:
        raise OmpError(f"OMP4PY_SERVE_QUEUE must be an integer, "
                       f"got {raw!r}") from None
    if capacity < 0:
        raise OmpError(f"OMP4PY_SERVE_QUEUE must be >= 0, "
                       f"got {capacity}")
    return capacity


def decorator_default(name: str, fallback):
    """Default value of an ``omp`` decorator argument.

    ``name`` is the lowercase argument name; the environment variable is
    ``OMP4PY_<NAME>``.  Booleans are parsed leniently; strings pass
    through unchanged.
    """
    raw = os.environ.get("OMP4PY_" + name.upper())
    if raw is None:
        return fallback
    if isinstance(fallback, bool):
        return _parse_bool("OMP4PY_" + name.upper(), raw)
    return raw
