"""Explicit tasking: work-stealing deques and the task lifecycle.

Tasks live in per-thread deques rather than one shared queue: each team
member pushes the tasks it submits onto its own deque, pops them back
LIFO (depth-first, so recursive decompositions like qsort/bfs reuse warm
data), and steals FIFO from round-robin-chosen victims when its own
deque runs dry (breadth-first, so a thief takes the oldest — typically
largest — subproblem).  The pure runtime backs each deque with a mutex
(:class:`repro.runtime.lowlevel.MutexDeque`); the cruntime substitutes a
CAS-based Chase–Lev-style owner/thief protocol
(:class:`repro.cruntime.lowlevel.ChaseLevDeque`).

Deque entries are *hints*, not ownership: the single execution gate is
the task node's ``claim()`` compare-exchange.  A node handed out twice
under an owner/thief race, or claimed directly by ``taskwait`` while
still sitting in a deque, is executed exactly once — the losers observe
a failed CAS and move on.  That discipline is what lets the Chase–Lev
emulation stay fence-free.
"""

from __future__ import annotations

FREE = 0
RUNNING = 1
DONE = 2
#: Deferred but not yet runnable: unsatisfied dependences (the paper's
#: Section V extension).  WAITING nodes are not enqueued; completion of
#: their predecessors releases them to FREE and queues them.
WAITING = 3


class TaskNode:
    """One explicit task: function, state machine, completion event."""

    __slots__ = ("fn", "state", "event", "team", "dep_lock",
                 "dep_done", "successors", "deps_remaining", "site")

    def __init__(self, fn, team, lowlevel):
        self.fn = fn
        self.team = team
        #: Submission call site, set only when the sampler is armed
        #: (the profiler's directive label for this task).
        self.site = None
        self.state = lowlevel.make_counter(FREE)
        self.event = lowlevel.make_event()
        # Dependence bookkeeping (inert unless depend clauses are used).
        self.dep_lock = lowlevel.make_mutex()
        self.dep_done = False
        self.successors: list = []
        self.deps_remaining = lowlevel.make_counter(0)

    def claim(self) -> bool:
        """Try to move this node from free to in-progress."""
        return self.state.compare_exchange(FREE, RUNNING)

    def add_successor(self, node: "TaskNode") -> bool:
        """Register a dependent task; ``False`` if already completed
        (the caller then counts this dependence as satisfied)."""
        with self.dep_lock:
            if self.dep_done:
                return False
            self.successors.append(node)
            return True

    def finish(self) -> list["TaskNode"]:
        """Complete the task; return successors that became runnable."""
        with self.dep_lock:
            self.dep_done = True
            ready = [successor for successor in self.successors
                     if successor.deps_remaining.fetch_add(-1) == 1]
            self.successors.clear()
        self.state.store(DONE)
        self.event.set()
        team = self.team
        if team is not None:
            tool = team.runtime.tool
            if tool is not None:
                tool.task_complete(team.runtime.get_thread_num(),
                                   id(self))
        return ready

    @property
    def done(self) -> bool:
        return self.state.load() == DONE


class WorkStealingScheduler:
    """Per-thread work-stealing deques for one team.

    ``push``/``claim`` take the caller's team-relative thread number;
    the per-thread ``local_hits``/``steals`` tallies are owner-written
    plain slots (no synchronization — each index is only ever written by
    its own thread) and feed the OMPT steal counters and the benchmark
    harness.
    """

    __slots__ = ("deques", "size", "local_hits", "steals")

    def __init__(self, lowlevel, size: int):
        self.deques = [lowlevel.make_deque() for _ in range(size)]
        self.size = size
        self.local_hits = [0] * size
        self.steals = [0] * size

    def push(self, thread_num: int, node: TaskNode) -> None:
        self.deques[thread_num].push(node)

    def claim(self, thread_num: int):
        """Claim one runnable task for ``thread_num``.

        Pops the thread's own deque LIFO first; when empty, steals FIFO
        from the other deques in round-robin order starting at the next
        thread.  Returns ``(node, victim_thread)`` with the node already
        claimed (state RUNNING), or ``None`` when no claimable task was
        found.  Nodes whose ``claim()`` fails were executed through
        another path (taskwait direct claim, duplicate steal hint) and
        are simply discarded.
        """
        own = self.deques[thread_num]
        while True:
            node = own.pop()
            if node is None:
                break
            if node.claim():
                self.local_hits[thread_num] += 1
                return node, thread_num
        size = self.size
        for offset in range(1, size):
            victim = thread_num + offset
            if victim >= size:
                victim -= size
            target = self.deques[victim]
            while True:
                node = target.steal()
                if node is None:
                    break
                if node.claim():
                    self.steals[thread_num] += 1
                    return node, victim
        return None

    def has_work(self) -> bool:
        """Advisory: might any deque hold a claimable node?

        Used only for the pre-sleep recheck in the barrier; stale nodes
        that lost their claim race can make this report ``True`` once
        more than necessary, which costs one extra (empty) claim pass.
        """
        for deque_ in self.deques:
            if deque_:
                return True
        return False

    def snapshot(self) -> dict[int, list]:
        """Advisory per-thread view of the queued (unclaimed) nodes —
        the stall watchdog includes it so a report can distinguish
        "work exists but nobody picks it up" from "no work anywhere"."""
        return {thread_num: deque_.snapshot()
                for thread_num, deque_ in enumerate(self.deques)
                if deque_}
