"""In-process end-to-end tests for the serving layer.

One module-scoped fleet (2 workers, debug apps enabled) backs most
tests; worker spawn+warmup is seconds, so tests share it and restore
any knob they mutate.  Chaos and hang behavior use the ``_spin`` debug
kernel: ``seconds >= 0`` busy-holds the team (kill-mid-request),
``seconds < 0`` deadlocks deterministically so the in-worker watchdog
emits a structured doctor report.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.serve import ServeServer
from repro.serve.shm import leaked_segments


@pytest.fixture(scope="module")
def server():
    srv = ServeServer(workers=2, queue_capacity=8, max_batch=4,
                      tenants={"default": 4}, job_timeout=30.0,
                      watchdog_interval=0.4, debug_apps=True)
    srv.start()
    yield srv
    srv.stop()
    assert leaked_segments() == []


def _post(url, path, doc, timeout=60.0):
    request = urllib.request.Request(
        url + path, data=json.dumps(doc).encode(),
        headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(request, timeout=timeout) as resp:
            return resp.status, dict(resp.headers), \
                json.loads(resp.read().decode())
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), \
            json.loads(error.read().decode())


def _get(url, path, timeout=10.0):
    with urllib.request.urlopen(url + path, timeout=timeout) as resp:
        return resp.status, resp.read().decode()


def test_run_pi_verified(server):
    status, _headers, body = _post(server.url, "/v1/run",
                                   {"app": "pi", "threads": 2,
                                    "overrides": {"n": 200000}})
    assert status == 200
    assert body["ok"] and body["verified"]
    assert body["digest"]["n"] == 1
    assert body["worker"] in (0, 1)


def test_return_values_ride_the_slab(server):
    status, _headers, body = _post(server.url, "/v1/run",
                                   {"app": "pi", "threads": 1,
                                    "overrides": {"n": 50000},
                                    "return_values": True})
    assert status == 200 and body["ok"]
    assert body["values"] == pytest.approx([3.14159], abs=1e-2)


def test_concurrent_same_group_requests_batch(server):
    doc = {"app": "qsort", "threads": 1, "overrides": {"n": 2000}}
    results = []

    def fire():
        results.append(server.submit(dict(doc)))

    threads = [threading.Thread(target=fire) for _ in range(6)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert all(r["ok"] and r["verified"] for r in results)


def test_unknown_app_is_400(server):
    status, _headers, body = _post(server.url, "/v1/run",
                                   {"app": "nope"})
    assert status == 400
    assert "unknown app" in body["error"]


def test_duplicate_tenant_is_409(server):
    status, _headers, body = _post(server.url, "/v1/tenants",
                                   {"name": "dup-t", "max_threads": 2})
    assert status == 201 and body["name"] == "dup-t"
    status, _headers, body = _post(server.url, "/v1/tenants",
                                   {"name": "dup-t", "max_threads": 2})
    assert status == 409
    assert "already registered" in body["error"]


def test_shed_is_503_with_retry_after(server):
    # Occupy both workers, then close admission: the next request must
    # shed with the Retry-After hint, not queue or hang.
    out = []

    def occupy():
        out.append(server.submit({"app": "_spin", "threads": 1,
                                  "overrides": {"seconds": 2.0}}))

    holders = [threading.Thread(target=occupy) for _ in range(2)]
    for thread in holders:
        thread.start()
    deadline = time.monotonic() + 10
    while time.monotonic() < deadline and server.fleet.idle_workers():
        time.sleep(0.05)
    capacity = server.queue.capacity
    server.queue.capacity = 0
    try:
        status, headers, body = _post(server.url, "/v1/run",
                                      {"app": "pi"})
    finally:
        server.queue.capacity = capacity
        for thread in holders:
            thread.join()
    assert status == 503
    assert float(headers["Retry-After"]) > 0
    assert body["retry_after_s"] > 0
    assert all(r["ok"] for r in out)


def test_worker_crash_retries_and_completes(server):
    before = server.fleet.restarts_total
    out = {}

    def fire():
        out["resp"] = server.submit({"app": "_spin", "threads": 1,
                                     "overrides": {"seconds": 3.0}})

    thread = threading.Thread(target=fire)
    thread.start()
    deadline = time.monotonic() + 10
    victim = None
    while time.monotonic() < deadline and victim is None:
        busy = [w for w in server.fleet.snapshot()
                if w["state"] == "busy"]
        if busy:
            victim = busy[0]["id"]
        else:
            time.sleep(0.05)
    assert victim is not None
    server.fleet.kill_worker(victim)
    thread.join(timeout=60)
    response = out["resp"]
    assert response["ok"], response
    assert response["attempts"] == 2
    assert server.fleet.restarts_total > before
    # The respawned worker serves again.
    assert server.submit({"app": "pi"})["ok"]


def test_hung_kernel_produces_doctor_report(server):
    retries, timeout = server.max_retries, server.job_timeout
    server.max_retries = 0
    server.job_timeout = 4.0
    try:
        response = server.submit({"app": "_spin", "threads": 2,
                                  "overrides": {"seconds": -1.0}})
    finally:
        server.max_retries = retries
        server.job_timeout = timeout
    assert not response["ok"]
    assert "worker" in response["error"]
    deadline = time.monotonic() + 10
    report = None
    while time.monotonic() < deadline and report is None:
        reports = [w["last_report"] for w in server.fleet.snapshot()
                   if w["last_report"]]
        report = reports[0] if reports else None
        time.sleep(0.1)
    assert report is not None
    assert report["verdict"] == "deadlock"
    assert report["schema"] == "omp4py-doctor-report/1"


def test_state_and_metrics_endpoints(server):
    status, text = _get(server.url, "/state")
    state = json.loads(text)
    assert status == 200
    assert state["schema"] == "omp4py-serve-state/1"
    assert "pi" in state["apps"] and "jacobi_mpi" in state["apps"]
    assert state["queue"]["capacity"] == 8
    assert any(w["pid"] for w in state["workers"])
    status, text = _get(server.url, "/metrics")
    assert status == 200
    assert "omp_serve_requests_total" in text
    assert "omp_serve_request_latency_seconds" in text
    status, text = _get(server.url, "/healthz")
    assert status == 200


def test_doctor_serve_formats_state(server):
    from repro.doctor import main as doctor_main
    doctor_main(["serve", server.url])


def test_jacobi_mpi_multi_node_tenant(server):
    status, _headers, body = _post(
        server.url, "/v1/run",
        {"app": "jacobi_mpi", "threads": 1, "nodes": 2, "mode": "pure",
         "overrides": {"n": 24, "iterations": 40}})
    assert status == 200
    assert body["ok"] and body["verified"]
    assert body["nodes"] == 2
