"""Tests of ``python -m repro.profile`` and the env-knob wiring."""

import json
import subprocess
import sys

import pytest

from repro.modes import Mode
from repro.ompt.cli import build_parser, main, profile_app
from repro.ompt.exporters import validate_chrome_trace
from repro.runtime import pure_runtime


class TestProfileApp:
    def test_jacobi_pure_produces_full_artifacts(self):
        measurement, report, trace, prometheus = profile_app(
            "jacobi", Mode.PURE, threads=2, profile="test")
        assert measurement.wall > 0
        assert report["run"]["app"] == "jacobi"
        assert report["run"]["threads"] == 2
        # Acceptance figures: chunks/iterations per thread, barrier
        # wait, and projection imbalance all present.
        assert report["per_thread"]["chunks"]
        assert sum(report["per_thread"]["iterations"].values()) > 0
        assert report["barrier_wait"]["count"] >= 1
        assert report["barrier_wait"]["per_thread_s"]
        assert report["regions"]
        assert report["imbalance"]["max"] >= 1.0
        assert validate_chrome_trace(trace) == []
        assert trace["otherData"]["dropped_events"] == 0
        assert "omp_parallel_regions_total" in prometheus
        json.dumps(report)

    def test_instrumentation_is_removed_afterwards(self):
        profile_app("pi", Mode.PURE, threads=2, profile="test")
        assert pure_runtime.tool is None
        assert not pure_runtime.tracer.enabled

    def test_trace_capacity_override_is_restored(self):
        old_capacity = pure_runtime.tracer.capacity
        _m, _report, trace, _prom = profile_app(
            "pi", Mode.PURE, threads=2, profile="test", trace_capacity=2)
        assert pure_runtime.tracer.capacity == old_capacity
        assert trace["otherData"]["dropped_events"] > 0
        assert len(trace["traceEvents"]) <= 2 + 2  # events + metadata

    def test_unknown_app_raises(self):
        from repro.errors import OmpError
        with pytest.raises(OmpError):
            profile_app("not-an-app", Mode.PURE, 1, "test")


class TestCliMain:
    def test_list_prints_apps(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "pi" in out.split()

    def test_missing_app_errors(self):
        with pytest.raises(SystemExit):
            main([])

    def test_writes_artifacts(self, tmp_path, capsys):
        assert main(["pi", "--mode", "pure", "--threads", "2",
                     "--profile", "test", "--out", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "[profile] pi (pure, 2 threads)" in out
        trace = json.loads((tmp_path / "pi_pure_trace.json").read_text())
        assert validate_chrome_trace(trace) == []
        report = json.loads(
            (tmp_path / "pi_pure_metrics.json").read_text())
        assert report["run"]["mode"] == "pure"
        prom = (tmp_path / "pi_pure_metrics.prom").read_text()
        assert "# TYPE omp_parallel_regions_total counter" in prom

    def test_truncation_warning(self, tmp_path, capsys):
        main(["pi", "--mode", "pure", "--threads", "2",
              "--profile", "test", "--out", str(tmp_path),
              "--trace-capacity", "2"])
        err = capsys.readouterr().err
        assert "trace truncated" in err

    def test_parser_defaults(self):
        args = build_parser().parse_args(["pi"])
        assert args.mode == "hybrid"
        assert args.threads == 2
        assert args.profile == "test"


class TestSampleFlag:
    def test_sample_writes_flamegraph_artifacts(self, tmp_path, capsys):
        from repro.sampling.exporters import (validate_collapsed,
                                              validate_speedscope)
        assert main(["qsort", "--mode", "pure", "--threads", "2",
                     "--profile", "test", "--repeats", "3",
                     "--sample", "--sample-hz", "400",
                     "--out", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "[profile] samples:" in out
        assert "at 400 Hz" in out
        collapsed = (tmp_path / "qsort_pure_samples.collapsed")
        assert validate_collapsed(collapsed.read_text()) == []
        speedscope = json.loads(
            (tmp_path / "qsort_pure_samples.speedscope.json").read_text())
        assert validate_speedscope(speedscope) == []
        # The sampler is stopped and detached again afterwards.
        assert pure_runtime.sampler is None

    def test_sample_hz_alone_arms_the_sampler(self, tmp_path, capsys):
        assert main(["pi", "--mode", "pure", "--threads", "2",
                     "--profile", "test", "--sample-hz", "100",
                     "--out", str(tmp_path)]) == 0
        assert "at 100 Hz" in capsys.readouterr().out
        assert (tmp_path / "pi_pure_samples.collapsed").exists()


class TestMergeFlag:
    @staticmethod
    def rank_trace(tmp_path, rank, epoch):
        payload = {
            "traceEvents": [
                {"name": "work", "ph": "i", "s": "t", "ts": 5.0,
                 "pid": 1, "tid": 0, "args": {}},
            ],
            "displayTimeUnit": "ms",
            "otherData": {"rank": rank, "dropped_events": 0,
                          "epoch_start_unix_s": epoch},
        }
        path = tmp_path / f"trace.rank{rank}.json"
        path.write_text(json.dumps(payload), encoding="utf-8")
        return path

    def test_merge_writes_one_timeline(self, tmp_path, capsys):
        first = self.rank_trace(tmp_path, 0, 50.0)
        second = self.rank_trace(tmp_path, 1, 50.25)
        out_dir = tmp_path / "merged"
        assert main(["--merge", str(first), str(second),
                     "--out", str(out_dir)]) == 0
        out = capsys.readouterr().out
        assert "merged 2 rank trace(s)" in out
        merged = json.loads(
            (out_dir / "trace.merged.json").read_text())
        assert validate_chrome_trace(merged) == []
        assert merged["otherData"]["ranks"] == 2
        instants = {row["pid"]: row["ts"]
                    for row in merged["traceEvents"]
                    if row["ph"] == "i"}
        assert instants[0] == 5.0
        assert instants[1] == pytest.approx(5.0 + 0.25e6)

    def test_merge_to_explicit_json_path(self, tmp_path, capsys):
        first = self.rank_trace(tmp_path, 0, 50.0)
        target = tmp_path / "deep" / "combined.json"
        assert main(["--merge", str(first),
                     "--out", str(target)]) == 0
        capsys.readouterr()
        assert json.loads(target.read_text())["otherData"]["ranks"] == 1


class TestEnvKnobs:
    def test_module_entrypoint_and_env_artifacts(self, tmp_path):
        """OMP4PY_TRACE / OMP4PY_METRICS write artifacts at exit."""
        script = tmp_path / "knob_demo.py"
        script.write_text(
            "from repro.api import omp\n"
            "\n"
            "@omp\n"
            "def work(n, threads):\n"
            "    total = 0\n"
            "    with omp('parallel for reduction(+:total) "
            "num_threads(threads) schedule(dynamic, 50)'):\n"
            "        for i in range(n):\n"
            "            total += i\n"
            "    return total\n"
            "\n"
            "assert work(500, 2) == sum(range(500))\n",
            encoding="utf-8")
        trace_path = tmp_path / "trace.json"
        metrics_path = tmp_path / "metrics.json"
        import os
        import pathlib

        import repro
        src_dir = str(pathlib.Path(repro.__file__).resolve().parents[1])
        env = dict(os.environ,
                   OMP4PY_MODE="pure",
                   OMP4PY_TRACE=str(trace_path),
                   OMP4PY_METRICS=str(metrics_path),
                   PYTHONPATH=src_dir)
        result = subprocess.run(
            [sys.executable, str(script)], env=env,
            capture_output=True, text=True, timeout=120)
        assert result.returncode == 0, result.stderr
        trace = json.loads(trace_path.read_text())
        assert validate_chrome_trace(trace) == []
        assert len(trace["traceEvents"]) > 0
        report = json.loads(metrics_path.read_text())
        assert report["per_thread"]["chunks"]

    def test_auto_instrument_is_idempotent(self, monkeypatch):
        from repro.ompt import auto
        monkeypatch.setattr(auto.env, "trace_spec", lambda: "1")
        monkeypatch.setattr(auto.env, "metrics_spec", lambda: None)
        try:
            auto.auto_instrument(pure_runtime)
            auto.auto_instrument(pure_runtime)
            assert pure_runtime.tracer.enabled
        finally:
            auto.deactivate(pure_runtime)
        assert not pure_runtime.tracer.enabled

    def test_spec_parsing(self, monkeypatch):
        from repro import env
        monkeypatch.delenv("OMP4PY_TRACE", raising=False)
        assert env.trace_spec() is None
        monkeypatch.setenv("OMP4PY_TRACE", "0")
        assert env.trace_spec() is None
        monkeypatch.setenv("OMP4PY_TRACE", "true")
        assert env.trace_spec() == "1"
        monkeypatch.setenv("OMP4PY_TRACE", "/tmp/x.json")
        assert env.trace_spec() == "/tmp/x.json"
        monkeypatch.setenv("OMP4PY_METRICS", "out.prom")
        assert env.metrics_spec() == "out.prom"
