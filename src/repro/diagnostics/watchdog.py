"""The stall watchdog: progress monitoring, diagnosis, and reports.

A :class:`Watchdog` owns a daemon thread that polls its runtime's
:class:`~repro.diagnostics.state.DiagnosticsState` at half its
configured interval.  When the progress counter has not moved for a
full interval *and* at least one thread holds a block record that old,
it snapshots the state, builds the wait-for graph
(:mod:`repro.diagnostics.waitgraph`), and emits a structured report:

* **deadlock** — the graph has a cycle or an unsatisfiable barrier.
  The report names every cycle participant: thread idents and team
  thread numbers, the directive kind each is blocked in, and the user
  source line (mapped through the transform's origin registry).
  Reported once; optionally the process is terminated
  (``exit_on_deadlock``, exit code :data:`DEADLOCK_EXIT_CODE`) so CI
  harnesses can run seeded faults under a timeout.
* **stall** — no cycle: per-thread wait kinds and ages plus the flight
  recorder tail, reported once per stall episode (re-armed when
  progress resumes).

The polling thread never takes runtime locks: it reads the diagnostics
tables racily and relies on the graph builder's sleeping-flag
discipline for soundness, so an armed watchdog adds zero contention to
the runtime hot paths.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time

from repro.diagnostics.envreport import icv_snapshot
from repro.diagnostics.state import DiagnosticsState
from repro.diagnostics.waitgraph import build_wait_graph

DEFAULT_INTERVAL = 5.0
#: Exit status used by ``exit_on_deadlock`` (and asserted by the
#: seeded-fault CI job): distinct from common tool exit codes.
DEADLOCK_EXIT_CODE = 86


class Watchdog:
    """Arm a runtime with diagnostics and watch it for lost progress."""

    def __init__(self, runtime, interval: float = DEFAULT_INTERVAL, *,
                 report_path: str | None = None,
                 exit_on_deadlock: bool = False,
                 on_report=None, flight=None, stream=None):
        if interval <= 0:
            raise ValueError("watchdog interval must be positive")
        self.runtime = runtime
        self.interval = interval
        self.report_path = report_path
        self.exit_on_deadlock = exit_on_deadlock
        self.on_report = on_report
        self.flight = flight
        self.stream = stream if stream is not None else sys.stderr
        #: Every report this watchdog emitted (tests read this).
        self.reports: list[dict] = []
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        self._deadlock_reported = False
        self._stall_reported = False

    # -- lifecycle --------------------------------------------------------

    def start(self) -> "Watchdog":
        if self._thread is not None:
            return self
        if self.runtime.diag is None:
            self.runtime.diag = DiagnosticsState()
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name=f"omp-watchdog-{self.runtime.name}",
            daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=self.interval * 4)
            self._thread = None

    # -- polling loop -----------------------------------------------------

    def _run(self) -> None:
        diag = self.runtime.diag
        tick = self.interval / 2.0
        last_progress = diag.progress
        last_change = time.perf_counter()
        while not self._stop.wait(tick):
            progress = diag.progress
            now = time.perf_counter()
            if progress != last_progress:
                last_progress = progress
                last_change = now
                self._stall_reported = False
                continue
            if (not any(diag.blocked.values())
                    or now - last_change < self.interval):
                continue
            self.check_now(stalled_for=now - last_change)
            if self._deadlock_reported:
                return

    # -- analysis ---------------------------------------------------------

    def check_now(self, stalled_for: float | None = None) -> dict | None:
        """Analyze immediately; returns the report it emitted, if any.

        Also the entry point for on-demand diagnosis (SIGUSR1, doctor).
        """
        diag = self.runtime.diag
        if diag is None:
            return None
        snapshot = diag.snapshot()
        graph = build_wait_graph(snapshot)
        verdict = graph.verdict()
        if verdict == "deadlock":
            if self._deadlock_reported:
                return None
            self._deadlock_reported = True
        else:
            if not snapshot.blocked or self._stall_reported:
                return None
            self._stall_reported = True
        report = build_report(self.runtime, snapshot, graph,
                              interval=self.interval,
                              stalled_for=stalled_for,
                              flight=self.flight)
        self._emit(report)
        if verdict == "deadlock" and self.exit_on_deadlock:
            os._exit(DEADLOCK_EXIT_CODE)
        return report

    def _emit(self, report: dict) -> None:
        self.reports.append(report)
        if self.report_path:
            try:
                with open(self.report_path, "w", encoding="utf-8") as out:
                    json.dump(report, out, indent=2)
            except OSError as error:
                print(f"omp4py watchdog: cannot write report to "
                      f"{self.report_path}: {error}", file=self.stream)
        print(format_report(report), file=self.stream, flush=True)
        if self.on_report is not None:
            try:
                self.on_report(report)
            except Exception:  # noqa: BLE001 - observer must not kill us
                pass


# ----------------------------------------------------------------------
# Report construction


def build_report(runtime, snapshot, graph, *, interval=None,
                 stalled_for=None, flight=None, reason="watchdog") -> dict:
    """The structured diagnosis document (JSON-able)."""
    threads = []
    for ident, records in sorted(snapshot.blocked.items()):
        innermost = records[-1]
        threads.append({
            "ident": ident,
            "name": snapshot.thread_names.get(ident, "?"),
            "blocked": [record.describe() for record in records],
            "wait": innermost.kind,
            "wait_age_s": round(snapshot.taken_at - innermost.since, 6),
        })
    cycles = graph.find_cycles()
    report = {
        "schema": "omp4py-doctor-report/1",
        "reason": reason,
        "runtime": runtime.name,
        "verdict": graph.verdict(),
        "interval_s": interval,
        "stalled_for_s": (round(stalled_for, 6)
                          if stalled_for is not None else None),
        "threads": threads,
        "cycles": [[_node_doc(graph, node) for node in cycle]
                   for cycle in cycles],
        "unsatisfiable": [
            {"barrier": _node_doc(graph, barrier_node),
             "missing": _node_doc(graph, member_node),
             "reason": why}
            for barrier_node, member_node, why in graph.unsatisfiable],
        "icvs": icv_snapshot(runtime, verbose=True),
    }
    if flight is not None:
        report["flight"] = flight.dump(tail=16)
    sampler = getattr(runtime, "sampler", None)
    if sampler is not None:
        # Profiler evidence: what each thread was actually executing
        # in the moments before the stall (last folded stacks).
        report["sampler"] = sampler.status(recent=5)
    return report


def _node_doc(graph, node) -> dict:
    kind, key = node
    doc = {"node": kind,
           "id": key if isinstance(key, (str, int)) else repr(key),
           "describe": graph.describe_node(node)}
    doc.update({name: value for name, value in
                graph.meta.get(node, {}).items()
                if isinstance(value, (str, int, float, bool))
                or value is None})
    return doc


def format_report(report: dict) -> str:
    """Human-readable rendering for stderr."""
    lines = [
        "=" * 66,
        f"omp4py {report['reason']}: verdict {report['verdict'].upper()} "
        f"(runtime {report['runtime']})",
    ]
    if report.get("stalled_for_s") is not None:
        lines.append(f"no progress for {report['stalled_for_s']:.3f}s "
                     f"(interval {report['interval_s']}s)")
    if report["cycles"]:
        lines.append("wait-for cycle(s):")
        for cycle in report["cycles"]:
            for step in cycle:
                lines.append(f"  -> {step['describe']}")
            lines.append("  -> (back to start)")
    for entry in report["unsatisfiable"]:
        lines.append(f"unsatisfiable: {entry['barrier']['describe']} — "
                     f"{entry['reason']}")
    lines.append("blocked threads:")
    if not report["threads"]:
        lines.append("  (none)")
    for thread in report["threads"]:
        innermost = thread["blocked"][-1]
        where = innermost.get("source") or "?"
        lines.append(
            f"  {thread['name']} (ident {thread['ident']}): "
            f"{thread['wait']} for {thread['wait_age_s']:.3f}s at {where}")
    flight = report.get("flight")
    if flight:
        lines.append("flight recorder tails:")
        for ident, entry in sorted(flight.items()):
            tail = entry["events"][-4:]
            kinds = " ".join(event["kind"] for event in tail) or "(empty)"
            lines.append(f"  {entry['thread']} (ident {ident}): "
                         f"... {kinds}")
    sampler = report.get("sampler")
    if sampler:
        lines.append(
            f"sampler: {'armed' if sampler['armed'] else 'stopped'} at "
            f"{sampler['hz']:g} Hz, {sampler['samples']} sample(s) "
            f"{sampler['by_state']}")
        for thread, stacks in sorted(
                sampler.get("recent_stacks", {}).items()):
            if not stacks:
                continue
            lines.append(f"  {thread} last sampled at:")
            for stack in stacks[-3:]:
                lines.append(f"    {stack}")
    lines.append("=" * 66)
    return "\n".join(lines)
