"""Wait-for graph construction and cycle detection.

Nodes are ``("thread", ident)``, ``("barrier", id)``, ``("lock", key)``,
``("task", id)`` and ``("ordered", id)`` tuples; edges mean *cannot
proceed until*:

* a sleeping thread → the resource its innermost block record names;
* a lock/ordered region → the thread that currently owns it;
* a barrier → every team member that has not arrived (threads that
  already left the region make the barrier *unsatisfiable* — recorded
  separately, and treated as fatal as a cycle) and every incomplete
  task of the team (the barrier release predicate requires a drained
  task pool);
* a taskwait thread → each incomplete child; a task → the thread
  executing it, or — while deferred on dependences — its unfinished
  predecessor tasks.  Unclaimed runnable tasks get no out-edge: any
  waiter at a scheduling point can still pick them up, so no deadlock
  can pass through them.

The builder draws thread out-edges only from records whose ``sleeping``
flag is set.  A thread that is awake — executing a stolen task inside a
barrier, or claiming its own children inside a taskwait — contributes
no edges, which structurally rules out the false cycles a naive
"thread is inside barrier()" interpretation would produce.

A cycle (or an unsatisfiable barrier) is a *deadlock*: under the
progress precondition the watchdog enforces, every participant is
asleep waiting on another participant, and nothing outside the cycle
can release any of them.  No cycle means *stall*: something is slow or
imbalanced, but at least one exit path exists.
"""

from __future__ import annotations

from repro.diagnostics.origin import format_location

#: Node kinds that represent waitable resources (vs. threads).
RESOURCE_KINDS = ("barrier", "lock", "task", "ordered", "copyprivate")

#: Block-record kinds whose resource participates in ownership edges.
_LOCK_LIKE = frozenset({"lock", "nest_lock", "critical", "atomic"})


class WaitGraph:
    """The built graph plus node metadata and the analysis verdicts."""

    def __init__(self):
        self.edges: dict[tuple, list] = {}
        self.meta: dict[tuple, dict] = {}
        #: ``(thread_node, barrier_node, reason)`` for barriers that can
        #: never be released (a non-arrived member left the region).
        self.unsatisfiable: list[tuple] = []

    def add_node(self, node: tuple, **meta) -> tuple:
        self.edges.setdefault(node, [])
        if meta:
            self.meta.setdefault(node, {}).update(meta)
        return node

    def add_edge(self, src: tuple, dst: tuple) -> None:
        self.add_node(src)
        self.add_node(dst)
        if dst not in self.edges[src]:
            self.edges[src].append(dst)

    # -- analysis --------------------------------------------------------

    def find_cycles(self) -> list[list[tuple]]:
        """Every distinct cycle reachable in the graph (iterative DFS;
        cycles deduplicated by node set)."""
        cycles: list[list[tuple]] = []
        seen_sets: list[frozenset] = []
        done: set[tuple] = set()
        for root in self.edges:
            if root in done:
                continue
            stack = [(root, iter(self.edges[root]))]
            path = [root]
            on_path = {root}
            while stack:
                node, children = stack[-1]
                advanced = False
                for child in children:
                    if child in on_path:
                        cycle = path[path.index(child):]
                        key = frozenset(cycle)
                        if key not in seen_sets:
                            seen_sets.append(key)
                            cycles.append(list(cycle))
                        continue
                    if child in done:
                        continue
                    stack.append((child, iter(self.edges.get(child, ()))))
                    path.append(child)
                    on_path.add(child)
                    advanced = True
                    break
                if not advanced:
                    stack.pop()
                    path.pop()
                    on_path.discard(node)
                    done.add(node)
        return cycles

    def verdict(self) -> str:
        """``"deadlock"`` or ``"stall"``."""
        if self.unsatisfiable or self.find_cycles():
            return "deadlock"
        return "stall"

    def describe_node(self, node: tuple) -> str:
        kind, key = node
        meta = self.meta.get(node, {})
        if kind == "thread":
            name = meta.get("name", "?")
            parts = [f"thread {name} (ident {key}"]
            if meta.get("thread_num", -1) >= 0:
                parts.append(f", team thread {meta['thread_num']}")
            parts.append(")")
            wait = meta.get("wait")
            if wait:
                parts.append(f" waiting in {wait}")
            source = meta.get("source")
            if source:
                parts.append(f" at {source}")
            return "".join(parts)
        if kind == "barrier":
            arrived = meta.get("arrived")
            size = meta.get("size")
            text = f"barrier 0x{key:x}"
            if arrived is not None and size is not None:
                text += f" ({arrived}/{size} arrived)"
            return text
        if kind == "lock":
            label = meta.get("label") or (
                key if isinstance(key, str) else
                f"0x{key:x}" if isinstance(key, int) else repr(key))
            owner = meta.get("owner")
            text = f"{meta.get('mutex_kind', 'lock')} {label}"
            if owner is not None:
                text += f" held by ident {owner}"
            return text
        if kind == "task":
            state = meta.get("state", "?")
            source = meta.get("source")
            text = f"task 0x{key:x} [{state}]"
            if source:
                text += f" from {source}"
            return text
        return f"{kind} {key}"  # ordered / copyprivate


def build_wait_graph(snapshot) -> WaitGraph:
    """Assemble the wait-for graph from a
    :class:`~repro.diagnostics.state.StateSnapshot`."""
    graph = WaitGraph()

    # Threads blocked at a barrier (any record in the stack counts as
    # "arrived"), keyed by barrier resource id.
    arrivals: dict[int, set[int]] = {}
    for ident, records in snapshot.blocked.items():
        for record in records:
            if record.kind == "barrier":
                arrivals.setdefault(record.resource, set()).add(ident)

    for ident, records in snapshot.blocked.items():
        innermost = records[-1]
        thread_node = graph.add_node(
            ("thread", ident),
            name=snapshot.thread_names.get(ident, "?"),
            thread_num=innermost.thread_num,
            wait=innermost.kind,
            source=(format_location(*innermost.location)
                    if innermost.location else None),
            wait_age_s=snapshot.taken_at - innermost.since,
        )
        if not innermost.sleeping:
            # Awake between sleeps (helping with tasks, re-checking a
            # predicate): not a wait-for participant this tick.
            continue
        _thread_edges(graph, snapshot, thread_node, innermost, arrivals)

    return graph


def _thread_edges(graph: WaitGraph, snapshot, thread_node, record,
                  arrivals) -> None:
    kind = record.kind
    if kind == "barrier":
        barrier_node = _barrier_node(graph, snapshot, record, arrivals)
        graph.add_edge(thread_node, barrier_node)
    elif kind in _LOCK_LIKE:
        lock_node = graph.add_node(("lock", record.resource),
                                   mutex_kind=kind,
                                   label=record.detail)
        graph.add_edge(thread_node, lock_node)
        owner = snapshot.owners.get(record.resource)
        if owner is not None:
            graph.meta.setdefault(lock_node, {})["owner"] = owner
            graph.add_edge(lock_node, _plain_thread(graph, snapshot,
                                                    owner))
    elif kind == "taskwait":
        children = record.detail or ()
        for child in children:
            if child.done:
                continue
            # A child this thread is itself executing is progress, not
            # a wait (it reaches here only on torn snapshots).
            running = snapshot.task_running.get(id(child))
            if running is not None and running[1] == record.ident:
                continue
            graph.add_edge(thread_node,
                           _task_node(graph, snapshot, child))
    elif kind == "dependence":
        predecessor = record.detail
        if predecessor is not None and not predecessor.done:
            graph.add_edge(thread_node,
                           _task_node(graph, snapshot, predecessor))
    elif kind == "ordered":
        ordered_node = graph.add_node(("ordered", record.resource))
        graph.add_edge(thread_node, ordered_node)
        holder = snapshot.owners.get(("ordered", record.resource))
        if holder is not None and holder != record.ident:
            graph.add_edge(ordered_node,
                           _plain_thread(graph, snapshot, holder))
    elif kind == "copyprivate":
        graph.add_edge(thread_node,
                       graph.add_node(("copyprivate", record.resource)))


def _plain_thread(graph: WaitGraph, snapshot, ident: int) -> tuple:
    return graph.add_node(("thread", ident),
                          name=snapshot.thread_names.get(ident, "?"))


def _barrier_node(graph: WaitGraph, snapshot, record, arrivals) -> tuple:
    barrier_node = ("barrier", record.resource)
    if barrier_node in graph.meta:
        return barrier_node
    team_info = snapshot.teams.get(record.team_id)
    arrived = arrivals.get(record.resource, set())
    graph.add_node(barrier_node,
                   team=record.team_id,
                   size=team_info.size if team_info else None,
                   arrived=len(arrived))
    if team_info is None:
        return barrier_node
    for thread_num, member_ident in team_info.members.items():
        if member_ident in arrived:
            continue
        member_node = _plain_thread(graph, snapshot, member_ident)
        graph.meta[member_node].setdefault("thread_num", thread_num)
        if thread_num in team_info.departed:
            graph.meta[member_node]["departed"] = True
            graph.unsatisfiable.append(
                (barrier_node, member_node,
                 f"team thread {thread_num} already left the region; "
                 f"the barrier can never be released"))
            graph.add_edge(barrier_node, member_node)
        else:
            graph.add_edge(barrier_node, member_node)
    # The release predicate also requires every team task to be done.
    for node, _ident in list(snapshot.task_running.values()) + \
            list(snapshot.task_waiting.values()):
        if id(node.team) == record.team_id and not node.done:
            graph.add_edge(barrier_node,
                           _task_node(graph, snapshot, node))
    return barrier_node


def _task_node(graph: WaitGraph, snapshot, node) -> tuple:
    task_node = ("task", id(node))
    if task_node in graph.meta:
        return task_node
    running = snapshot.task_running.get(id(node))
    waiting = snapshot.task_waiting.get(id(node))
    state = ("running" if running else
             "deferred" if waiting else "runnable")
    graph.add_node(task_node, state=state)
    if running is not None:
        graph.add_edge(task_node,
                       _plain_thread(graph, snapshot, running[1]))
    elif waiting is not None:
        _waiting_node, predecessors = waiting
        for predecessor in predecessors:
            if not predecessor.done:
                graph.add_edge(task_node,
                               _task_node(graph, snapshot, predecessor))
    return task_node
