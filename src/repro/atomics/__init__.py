"""Atomic-operation substrate used by the native runtime simulation.

The paper's ``cruntime`` is generated with Cython and uses C ``stdatomic``
operations — ``fetch_add`` for dynamic-schedule counters, an atomic swap
for shared-counter creation, and ``compare_exchange`` for lock-free task
enqueueing.  CPython 3.11 exposes no atomics at the language level (the
paper makes the same observation about 3.13/3.14), so this package
*emulates* the C atomics API.

Emulation strategy: a small, fixed pool of stripe locks shared by every
atomic cell.  Each operation takes exactly one uncontended lock — the
closest Python analogue of a hardware atomic — while preserving the
algorithmic structure of lock-free code: CAS loops retry, ``fetch_add``
never blocks other cells, and no user-visible mutex exists.  The
substitution is documented in DESIGN.md.
"""

from repro.atomics.cell import (CACHE_LINE_BYTES, AtomicLong, AtomicRef,
                                PaddedAccumulator, atomic_setdefault,
                                cas_attr)

__all__ = ["AtomicLong", "AtomicRef", "CACHE_LINE_BYTES",
           "PaddedAccumulator", "atomic_setdefault", "cas_attr"]
