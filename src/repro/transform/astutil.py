"""AST node builders, renaming, and structural checks for the rewriter."""

from __future__ import annotations

import ast

from repro.errors import OmpSyntaxError


def name_load(name: str) -> ast.Name:
    return ast.Name(id=name, ctx=ast.Load())


def name_store(name: str) -> ast.Name:
    return ast.Name(id=name, ctx=ast.Store())


def constant(value) -> ast.Constant:
    return ast.Constant(value=value)


def rt_attr(rt_name: str, method: str) -> ast.Attribute:
    """``__omp__.method`` reference."""
    return ast.Attribute(value=name_load(rt_name), attr=method,
                         ctx=ast.Load())


def rt_call(rt_name: str, method: str, args=(), keywords=()) -> ast.Call:
    """``__omp__.method(args..., kw=...)`` expression."""
    return ast.Call(func=rt_attr(rt_name, method), args=list(args),
                    keywords=[ast.keyword(arg=key, value=value)
                              for key, value in keywords])


def rt_call_stmt(rt_name: str, method: str, args=(), keywords=()) -> ast.Expr:
    return ast.Expr(value=rt_call(rt_name, method, args, keywords))


def assign(target_name: str, value: ast.expr) -> ast.Assign:
    return ast.Assign(targets=[name_store(target_name)], value=value)


def parse_expression(text: str, directive: str) -> ast.expr:
    """Parse a clause's raw expression text into an AST expression."""
    try:
        return ast.parse(text, mode="eval").body
    except SyntaxError as error:
        raise OmpSyntaxError(
            f"invalid Python expression {text!r}: {error.msg}",
            directive=directive) from None


def try_finally(body: list[ast.stmt], final: list[ast.stmt]) -> ast.Try:
    return ast.Try(body=body, handlers=[], orelse=[], finalbody=final)


class Renamer(ast.NodeTransformer):
    """Renames identifiers throughout a subtree.

    Applies to ``Name`` nodes (any context), ``global``/``nonlocal``
    declarations, and exception-handler names.  Function parameters are
    deliberately left alone: generated inner functions use parameters
    only for ``firstprivate`` captures, which keep their original names.
    A nested scope whose parameter shadows a renamed name is rare enough
    in directive bodies that the conservative whole-subtree rename is the
    right trade-off (the same is true of the paper's implementation,
    which renames by suffixing to avoid collisions).
    """

    def __init__(self, mapping: dict[str, str]):
        self.mapping = mapping

    def visit_Name(self, node: ast.Name) -> ast.Name:
        new = self.mapping.get(node.id)
        if new is not None:
            return ast.copy_location(
                ast.Name(id=new, ctx=node.ctx), node)
        return node

    def visit_Global(self, node: ast.Global) -> ast.Global:
        node.names = [self.mapping.get(n, n) for n in node.names]
        return node

    def visit_Nonlocal(self, node: ast.Nonlocal) -> ast.Nonlocal:
        node.names = [self.mapping.get(n, n) for n in node.names]
        return node

    def visit_ExceptHandler(self, node: ast.ExceptHandler):
        self.generic_visit(node)
        if node.name is not None:
            node.name = self.mapping.get(node.name, node.name)
        return node


def rename_in(stmts: list[ast.stmt],
              mapping: dict[str, str]) -> list[ast.stmt]:
    if not mapping:
        return stmts
    renamer = Renamer(mapping)
    return [renamer.visit(stmt) for stmt in stmts]


class _EscapeChecker(ast.NodeVisitor):
    """Rejects control flow that escapes a structured block.

    ``return`` anywhere in the block (it would return from the generated
    inner function, not the user's), and ``break``/``continue`` that bind
    to a loop outside the block, are non-conforming.  Nested function
    definitions are opaque.
    """

    def __init__(self, directive: str, in_ws_loop: bool):
        self.directive = directive
        #: True when the checked statements sit directly inside a
        #: worksharing loop (where ``continue`` is legal but ``break``
        #: would abandon unscheduled chunks).
        self.in_ws_loop = in_ws_loop
        self.loop_depth = 0

    def visit_Return(self, node: ast.Return) -> None:
        raise OmpSyntaxError("return is not allowed inside a structured "
                             "block", directive=self.directive)

    def visit_Break(self, node: ast.Break) -> None:
        if self.loop_depth == 0:
            message = ("break out of a worksharing loop" if self.in_ws_loop
                       else "break escaping a structured block")
            raise OmpSyntaxError(message, directive=self.directive)

    def visit_Continue(self, node: ast.Continue) -> None:
        if self.loop_depth == 0 and not self.in_ws_loop:
            raise OmpSyntaxError(
                "continue escaping a structured block",
                directive=self.directive)

    def _visit_loop(self, node) -> None:
        self.loop_depth += 1
        for stmt in node.body:
            self.visit(stmt)
        self.loop_depth -= 1
        for stmt in node.orelse:
            self.visit(stmt)

    visit_For = _visit_loop
    visit_While = _visit_loop

    def visit_FunctionDef(self, node) -> None:
        pass  # opaque scope

    visit_AsyncFunctionDef = visit_FunctionDef
    visit_Lambda = visit_FunctionDef


def check_no_escape(stmts: list[ast.stmt], directive: str) -> None:
    """Check a parallel/task/single/... block body."""
    checker = _EscapeChecker(directive, in_ws_loop=False)
    for stmt in stmts:
        checker.visit(stmt)


def check_loop_body(stmts: list[ast.stmt], directive: str) -> None:
    """Check the body of a worksharing loop: ``continue`` is fine,
    ``break`` of the worksharing loop itself is not."""
    checker = _EscapeChecker(directive, in_ws_loop=True)
    for stmt in stmts:
        checker.visit(stmt)


def fix_locations(node: ast.AST, reference: ast.AST | None = None) -> None:
    if reference is not None:
        ast.copy_location(node, reference)
    ast.fix_missing_locations(node)
