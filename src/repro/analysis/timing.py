"""Timing with the free-threaded-interpreter projection.

``measure`` runs a transformed kernel, recording the measured wall
time, the per-thread CPU accounting, and the projection model's output
(see :mod:`repro.runtime.stats` and DESIGN.md).  Which number is
*authoritative* depends on the execution backend
(:mod:`repro.runtime.gilstate`):

* ``gil`` — threads serialize, so ``projected`` is the model's no-GIL
  estimate (the quantity the paper's figures plot) and ``wall`` is the
  serialized measurement.
* ``nogil`` — threads genuinely overlap, so ``projected`` *is* the
  measured wall time; the model's output is kept in
  ``model_projected`` as a cross-check (``repro.analysis.validate``
  gates on the two agreeing).

Every Measurement records which backend produced it.
"""

from __future__ import annotations

import dataclasses
import statistics
import sys
import time

from repro.decorator import runtime_for
from repro.modes import Mode
from repro.runtime.gilstate import Backend, current_backend


@dataclasses.dataclass
class Measurement:
    """One timed kernel execution (or the mean of several)."""

    wall: float
    projected: float
    serialized_cpu: float
    critical_cpu: float
    regions: int
    value: object = None
    #: CPU-weighted load imbalance over the recorded regions
    #: (max over mean per-thread CPU time; 1.0 = perfectly balanced).
    imbalance: float = 1.0
    #: Execution backend that produced this measurement (``"gil"`` or
    #: ``"nogil"``): decides whether ``projected`` is modelled or
    #: measured.
    backend: str = Backend.GIL.value
    #: The projection model's raw output (``wall − Σcpu + maxcpu``,
    #: floored at the critical path).  Equals ``projected`` on the gil
    #: backend; on nogil it is the cross-check the validation harness
    #: compares against the measured wall.
    model_projected: float | None = None

    @property
    def parallel_fraction(self) -> float:
        """Fraction of the wall time spent inside parallel regions."""
        return min(1.0, self.serialized_cpu / self.wall) if self.wall \
            else 0.0


def _runtime_of(fn, runtime):
    if runtime is not None:
        return runtime
    mode = getattr(fn, "__omp_mode__", None)
    return runtime_for(mode if mode is not None else Mode.HYBRID)


def _backend_of(runtime) -> Backend:
    backend = getattr(runtime, "backend", None)
    return backend if backend is not None else current_backend()


def measure(fn, /, *args, runtime=None, repeats: int = 1,
            make_args=None, **kwargs) -> Measurement:
    """Run ``fn`` ``repeats`` times; return mean wall/projection.

    ``make_args`` (when given) is called before every repetition and
    must return ``(args, kwargs)`` — needed for kernels that mutate
    their inputs (lu, qsort, md, ...).
    """
    rt = _runtime_of(fn, runtime)
    backend = _backend_of(rt)
    walls: list[float] = []
    model_projections: list[float] = []
    serialized_total = 0.0
    critical_total = 0.0
    regions_total = 0
    mean_cpu_total = 0.0
    value = None
    # Finer-grained GIL switching reduces measurement noise from thread
    # scheduling granularity; restored afterwards.  Meaningless without
    # a GIL, so the nogil backend leaves the interpreter untouched.
    old_interval = None
    if backend is Backend.GIL:
        old_interval = sys.getswitchinterval()
        sys.setswitchinterval(0.0005)
    try:
        for _repeat in range(repeats):
            if make_args is not None:
                call_args, call_kwargs = make_args()
            else:
                call_args, call_kwargs = args, kwargs
            rt.stats.reset()
            begin = time.perf_counter()
            value = fn(*call_args, **call_kwargs)
            wall = time.perf_counter() - begin
            serialized, critical, regions = rt.stats.totals()
            walls.append(wall)
            model_projections.append(rt.stats.project(wall))
            serialized_total += serialized
            critical_total += critical
            regions_total += regions
            mean_cpu_total += sum(r.mean_cpu for r in rt.stats.snapshot())
    finally:
        if old_interval is not None:
            sys.setswitchinterval(old_interval)
    count = max(1, repeats)
    # Aggregate imbalance: total critical-path CPU over the total of
    # per-region mean CPU — a CPU-weighted average of per-region
    # max/mean ratios.
    imbalance = critical_total / mean_cpu_total if mean_cpu_total > 0 \
        else 1.0
    mean_wall = statistics.fmean(walls)
    mean_model = statistics.fmean(model_projections)
    return Measurement(
        wall=mean_wall,
        projected=(mean_wall if backend.measures_parallelism
                   else mean_model),
        serialized_cpu=serialized_total / count,
        critical_cpu=critical_total / count,
        regions=regions_total // count,
        value=value,
        imbalance=imbalance,
        backend=backend.value,
        model_projected=mean_model)


def measure_mpi(launch, nodes: int, /, *args, runtime=None,
                repeats: int = 1, **kwargs) -> Measurement:
    """Measure a hybrid MPI/OpenMP launch.

    Rank regions execute concurrently across "nodes", so the cluster
    projection divides the single-interpreter projection by the node
    count — the uniform-concurrency model documented in DESIGN.md
    (per-rank imbalance is already inside the per-region maxima).  On
    the nogil backend the rank threads already overlap on this one
    machine, so the measured wall is authoritative and the per-node
    division survives only in ``model_projected`` (a single machine is
    still not a cluster; see docs/projection.md).
    """
    from repro.cruntime import cruntime
    from repro.runtime import pure_runtime
    runtimes = [runtime] if runtime is not None else [pure_runtime,
                                                      cruntime]
    backend = _backend_of(runtimes[0])
    walls: list[float] = []
    model_projections: list[float] = []
    value = None
    for _repeat in range(repeats):
        for rt in runtimes:
            rt.stats.reset()
        begin = time.perf_counter()
        value = launch(*args, **kwargs)
        wall = time.perf_counter() - begin
        projected = min(rt.stats.project(wall) for rt in runtimes)
        walls.append(wall)
        model_projections.append(projected / nodes)
    mean_wall = statistics.fmean(walls)
    mean_model = statistics.fmean(model_projections)
    return Measurement(
        wall=mean_wall,
        projected=(mean_wall if backend.measures_parallelism
                   else mean_model),
        serialized_cpu=0.0, critical_cpu=0.0, regions=0, value=value,
        backend=backend.value, model_projected=mean_model)
