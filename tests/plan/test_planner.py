"""Unit tests for the inspector: Map, partitioning, coloring,
scheduling."""

import pytest

from repro.errors import OmpError
from repro.plan import Map, build_plan
from repro.plan.planner import _partition_bounds


def _color_elements(plan, the_map):
    """Per-color list of (partition, element set) pairs."""
    per_color = []
    for members in plan.colors:
        pairs = []
        for part in members:
            lo, hi = plan.partitions[part]
            touched = set()
            for iteration in range(lo, hi):
                touched.update(the_map[iteration])
            pairs.append((part, touched))
        per_color.append(pairs)
    return per_color


class TestMap:
    def test_entries_are_immutable_tuples(self):
        m = Map("m", [[1, 2], [2, 3]])
        assert m.entries == ((1, 2), (2, 3))
        assert len(m) == 2
        assert m[1] == (2, 3)
        assert m.elements() == {1, 2, 3}
        assert m.arity == 2

    def test_empty_name_rejected(self):
        with pytest.raises(OmpError):
            Map("", [[0]])

    def test_empty_map(self):
        m = Map("empty", [])
        assert len(m) == 0
        assert m.arity == 0
        assert m.elements() == set()


class TestPartitionBounds:
    @pytest.mark.parametrize("total,size", [
        (10, 3), (10, 10), (10, 100), (1, 1), (7, 2),
    ])
    def test_bounds_tile_the_space(self, total, size):
        bounds = _partition_bounds(total, size)
        covered = [i for lo, hi in bounds for i in range(lo, hi)]
        assert covered == list(range(total))
        assert all(hi - lo <= size for lo, hi in bounds)

    def test_empty_space(self):
        assert _partition_bounds(0, 4) == ()


class TestBuildPlan:
    def test_partition_size_validated(self):
        with pytest.raises(OmpError):
            build_plan(Map("m", [[0]]), 0)

    def test_disjoint_map_is_one_color(self):
        m = Map("disjoint", [[i] for i in range(8)])
        plan = build_plan(m, 2)
        assert plan.ncolors == 1
        assert plan.conflict_edges == 0
        assert plan.npartitions == 4

    def test_chain_map_colors(self):
        # Row-halo chain: partition p conflicts with p-1 and p+1.
        n = 10
        m = Map("chain", [tuple(r for r in (i - 1, i, i + 1)
                                if 0 <= r < n) for i in range(n)])
        plan = build_plan(m, 2)
        assert plan.ncolors == 2
        # 4 partitions in a chain: 3 edges.
        assert plan.npartitions == 5
        assert plan.conflict_edges == 4

    def test_all_conflict_map_serializes(self):
        m = Map("hub", [[0], [0], [0], [0]])
        plan = build_plan(m, 1)
        # Every partition touches element 0: one partition per color.
        assert plan.ncolors == plan.npartitions == 4

    def test_coloring_invariant_explicit(self):
        m = Map("mix", [[0, 1], [1, 2], [3], [0, 3], [4], [2, 4]])
        plan = build_plan(m, 1)
        for pairs in _color_elements(plan, m):
            for i, (_, a) in enumerate(pairs):
                for _, b in pairs[i + 1:]:
                    assert not (a & b)

    def test_empty_map_plan(self):
        plan = build_plan(Map("none", []), 4)
        assert plan.total == 0
        assert plan.npartitions == 0
        assert plan.ncolors == 0


class TestScheduleFor:
    def test_owner_is_partition_mod_nthreads(self):
        m = Map("disjoint", [[i] for i in range(9)])
        plan = build_plan(m, 1)
        schedule = plan.schedule_for(4)
        assert len(schedule) == plan.ncolors
        for per_thread in schedule:
            for thread, chunks in enumerate(per_thread):
                for lo, hi in chunks:
                    part = plan.partitions.index((lo, hi))
                    assert part % 4 == thread

    def test_schedule_covers_every_partition_once(self):
        m = Map("chain", [(i, i + 1) for i in range(17)])
        plan = build_plan(m, 3)
        schedule = plan.schedule_for(3)
        seen = [chunk for per_thread in schedule
                for chunks in per_thread for chunk in chunks]
        assert sorted(seen) == sorted(plan.partitions)

    def test_schedule_is_cached(self):
        plan = build_plan(Map("m", [[0], [1]]), 1)
        assert plan.schedule_for(2) is plan.schedule_for(2)

    def test_invalid_team_size(self):
        plan = build_plan(Map("m", [[0]]), 1)
        with pytest.raises(OmpError):
            plan.schedule_for(0)

    def test_owner_stable_across_colors(self):
        # A partition keeps its owner whatever color it lands in.
        n = 12
        m = Map("chain", [tuple(r for r in (i - 1, i, i + 1)
                                if 0 <= r < n) for i in range(n)])
        plan = build_plan(m, 1)
        schedule = plan.schedule_for(3)
        for per_thread in schedule:
            for thread, chunks in enumerate(per_thread):
                for chunk in chunks:
                    assert plan.partitions.index(chunk) % 3 == thread
