"""End-to-end doctor runs over the seeded faults in ``examples/faults``.

Each fault is executed in a subprocess via ``python -m repro.doctor run``
with an aggressive watchdog, wrapped in a generous timeout.  The
acceptance bar from the issue: the process terminates with the deadlock
exit code (86) instead of hanging, and the JSON report names the exact
cycle participants — thread ids, directive kinds, and user source lines.

Note the CLI flag order: ``run`` collects everything after the script
path as the *script's* argv (``argparse.REMAINDER``), so doctor options
must precede the script.
"""

import json
import os
import pathlib
import subprocess
import sys

import pytest

REPO = pathlib.Path(__file__).resolve().parent.parent.parent
FAULTS = REPO / "examples" / "faults"
WATCHDOG = "0.5"
#: Hard cap: each fault blocks ~0.2s before deadlocking, the watchdog
#: must fire within 2x its interval, and interpreter startup rides on
#: top.  Far below this means the doctor worked; hitting it means hang.
TIMEOUT = 60


def run_doctor(script: pathlib.Path, report: pathlib.Path,
               extra=()):  # -> subprocess.CompletedProcess
    env = dict(os.environ,
               PYTHONPATH=str(REPO / "src"),
               OMP4PY_RUNTIME="pure")
    env.pop("OMP4PY_WATCHDOG", None)
    env.pop("OMP4PY_FLIGHT", None)
    return subprocess.run(
        [sys.executable, "-m", "repro.doctor", "run",
         "--watchdog", WATCHDOG, "--report", str(report), *extra,
         str(script)],
        capture_output=True, text=True, timeout=TIMEOUT, env=env,
        cwd=str(REPO))


def load_report(path: pathlib.Path) -> dict:
    report = json.loads(path.read_text(encoding="utf-8"))
    assert report["schema"] == "omp4py-doctor-report/1"
    assert report["verdict"] == "deadlock"
    return report


def cycle_text(report: dict) -> str:
    return " | ".join(step["describe"]
                      for cycle in report["cycles"] for step in cycle)


class TestSeededFaults:
    def test_lock_inversion_names_both_threads_and_locks(self, tmp_path):
        report_path = tmp_path / "report.json"
        proc = run_doctor(FAULTS / "lock_inversion.py", report_path)
        assert proc.returncode == 86, proc.stderr[-2000:]
        report = load_report(report_path)
        (cycle,) = report["cycles"]
        threads = [s for s in cycle if s["node"] == "thread"]
        locks = [s for s in cycle if s["node"] == "lock"]
        assert len(threads) == 2 and len(locks) == 2
        assert {t["thread_num"] for t in threads} == {0, 1}
        assert all(t["wait"] == "lock" for t in threads)
        # User source lines of the two blocked omp_set_lock calls.
        assert all("lock_inversion.py:" in (t.get("source") or "")
                   for t in threads)

    def test_unmatched_barrier_is_unsatisfiable(self, tmp_path):
        report_path = tmp_path / "report.json"
        proc = run_doctor(FAULTS / "unmatched_barrier.py", report_path)
        assert proc.returncode == 86, proc.stderr[-2000:]
        report = load_report(report_path)
        assert report["unsatisfiable"], report
        entry = report["unsatisfiable"][0]
        assert "left the region" in entry["reason"]
        assert entry["barrier"]["node"] == "barrier"
        (blocked,) = report["threads"]
        assert blocked["wait"] == "barrier"
        assert "unmatched_barrier.py:" in (
            blocked["blocked"][-1].get("source") or "")

    def test_task_dependence_cycle_crosses_taskwait(self, tmp_path):
        report_path = tmp_path / "report.json"
        proc = run_doctor(FAULTS / "task_dependence_cycle.py", report_path)
        assert proc.returncode == 86, proc.stderr[-2000:]
        report = load_report(report_path)
        text = cycle_text(report)
        assert "taskwait" in text
        assert "task 0x" in text
        assert "lock" in text
        waits = {t["wait"] for t in report["threads"]}
        assert "taskwait" in waits and "lock" in waits

    def test_no_exit_keeps_reporting_without_code_86(self, tmp_path):
        """``--no-exit``: the run itself never returns (the script is
        deadlocked), so only check the flag parses and arms — by running
        a *healthy* script to completion under it."""
        healthy = tmp_path / "healthy.py"
        healthy.write_text(
            "from repro import omp, omp_get_thread_num\n"
            "@omp\n"
            "def region():\n"
            "    hits = []\n"
            "    with omp('parallel num_threads(2)'):\n"
            "        hits.append(omp_get_thread_num())\n"
            "    return sorted(hits)\n"
            "assert region() == [0, 1]\n",
            encoding="utf-8")
        proc = run_doctor(healthy, tmp_path / "unused.json",
                          extra=("--no-exit",))
        assert proc.returncode == 0, proc.stderr[-2000:]


class TestDoctorCLI:
    def test_env_json(self):
        env = dict(os.environ, PYTHONPATH=str(REPO / "src"))
        proc = subprocess.run(
            [sys.executable, "-m", "repro.doctor", "env", "--json",
             "--runtime", "pure"],
            capture_output=True, text=True, timeout=TIMEOUT, env=env,
            cwd=str(REPO))
        assert proc.returncode == 0, proc.stderr[-2000:]
        payload = json.loads(proc.stdout)
        assert "runtime" in payload
        assert payload["icvs"]["_OPENMP"] == "200805"

    def test_dump_rejects_bogus_pid(self):
        env = dict(os.environ, PYTHONPATH=str(REPO / "src"))
        proc = subprocess.run(
            [sys.executable, "-m", "repro.doctor", "dump", "999999999"],
            capture_output=True, text=True, timeout=TIMEOUT, env=env,
            cwd=str(REPO))
        assert proc.returncode != 0


@pytest.mark.slow
class TestSeededFaultsCRuntime:
    """The same inversion fault on the C-accelerated runtime path."""

    def test_lock_inversion(self, tmp_path):
        report_path = tmp_path / "report.json"
        env = dict(os.environ, PYTHONPATH=str(REPO / "src"),
                   OMP4PY_RUNTIME="cruntime")
        proc = subprocess.run(
            [sys.executable, "-m", "repro.doctor", "run",
             "--watchdog", WATCHDOG, "--report", str(report_path),
             str(FAULTS / "lock_inversion.py")],
            capture_output=True, text=True, timeout=TIMEOUT, env=env,
            cwd=str(REPO))
        assert proc.returncode == 86, proc.stderr[-2000:]
        assert load_report(report_path)["cycles"]
