"""End-to-end tests of sections, single, master, and copyprivate."""

import pytest

from repro import transform
from repro.errors import OmpSyntaxError


def three_sections(n):
    from repro import omp
    log = []
    with omp("parallel num_threads(3)"):
        with omp("sections"):
            with omp("section"):
                with omp("critical"):
                    log.append("a")
            with omp("section"):
                with omp("critical"):
                    log.append("b")
            with omp("section"):
                with omp("critical"):
                    log.append("c")
    return sorted(log)


def parallel_sections_combined(n):
    from repro import omp
    log = []
    with omp("parallel sections num_threads(2)"):
        with omp("section"):
            with omp("critical"):
                log.append(1)
        with omp("section"):
            with omp("critical"):
                log.append(2)
    return sorted(log)


def sections_more_than_threads(n):
    from repro import omp
    log = []
    with omp("parallel num_threads(2)"):
        with omp("sections"):
            with omp("section"):
                with omp("critical"):
                    log.append(0)
            with omp("section"):
                with omp("critical"):
                    log.append(1)
            with omp("section"):
                with omp("critical"):
                    log.append(2)
            with omp("section"):
                with omp("critical"):
                    log.append(3)
            with omp("section"):
                with omp("critical"):
                    log.append(4)
    return sorted(log)


def sections_lastprivate(n):
    from repro import omp
    v = -1
    with omp("parallel num_threads(2)"):
        with omp("sections lastprivate(v)"):
            with omp("section"):
                v = 10
            with omp("section"):
                v = 20
            with omp("section"):
                v = 30
    return v


def sections_with_stray_statement(n):
    from repro import omp
    with omp("sections"):
        x = 1
        with omp("section"):
            pass


def stray_section(n):
    from repro import omp
    with omp("section"):
        pass


def single_runs_once(n):
    from repro import omp
    counter = []
    with omp("parallel num_threads(4)"):
        with omp("single"):
            counter.append(1)
        with omp("single"):
            counter.append(2)
    return sorted(counter)


def single_copyprivate(n):
    from repro import omp, omp_get_thread_num
    observed = []
    value = None
    with omp("parallel num_threads(3) private(value)"):
        with omp("single copyprivate(value)"):
            value = 42
        with omp("critical"):
            observed.append(value)
    return observed


def copyprivate_two_vars(n):
    from repro import omp
    a = None
    b = None
    out = []
    with omp("parallel num_threads(2) private(a, b)"):
        with omp("single copyprivate(a, b)"):
            a = "x"
            b = "y"
        with omp("critical"):
            out.append((a, b))
    return out


def master_only_thread_zero(n):
    from repro import omp, omp_get_thread_num
    hits = []
    with omp("parallel num_threads(4)"):
        with omp("master"):
            hits.append(omp_get_thread_num())
    return hits


class TestSections:
    def test_each_section_once(self, runtime_mode):
        fn = transform(three_sections, runtime_mode)
        assert fn(0) == ["a", "b", "c"]

    def test_combined_parallel_sections(self, runtime_mode):
        fn = transform(parallel_sections_combined, runtime_mode)
        assert fn(0) == [1, 2]

    def test_more_sections_than_threads(self, runtime_mode):
        fn = transform(sections_more_than_threads, runtime_mode)
        assert fn(0) == [0, 1, 2, 3, 4]

    def test_lastprivate_takes_lexically_last(self, runtime_mode):
        fn = transform(sections_lastprivate, runtime_mode)
        assert fn(0) == 30

    def test_stray_statement_rejected(self, runtime_mode):
        with pytest.raises(OmpSyntaxError, match="only"):
            transform(sections_with_stray_statement, runtime_mode)

    def test_stray_section_rejected(self, runtime_mode):
        with pytest.raises(OmpSyntaxError, match="section"):
            transform(stray_section, runtime_mode)


class TestSingle:
    def test_single_runs_once_per_region(self, runtime_mode):
        fn = transform(single_runs_once, runtime_mode)
        assert fn(0) == [1, 2]

    def test_copyprivate_broadcasts(self, runtime_mode):
        fn = transform(single_copyprivate, runtime_mode)
        assert fn(0) == [42, 42, 42]

    def test_copyprivate_multiple_vars(self, runtime_mode):
        fn = transform(copyprivate_two_vars, runtime_mode)
        assert fn(0) == [("x", "y"), ("x", "y")]


class TestMaster:
    def test_master_is_thread_zero_no_barrier(self, runtime_mode):
        fn = transform(master_only_thread_zero, runtime_mode)
        assert fn(0) == [0]
