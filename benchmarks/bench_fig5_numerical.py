"""Fig. 5 — the seven numerical applications, every execution mode.

Each (app, series) pair is one benchmark; pytest-benchmark's comparison
table reproduces the figure's per-app mode ordering (Pure slowest,
CompiledDT fastest, PyOMP ≈ CompiledDT where supported).  Thread
scaling — the figure's x axis — is the report harness's job
(``python -m repro.analysis.report fig5``), since wall-clock scaling
needs the no-GIL projection.
"""

import pytest

from repro.apps import get_app
from repro.modes import ALL_MODES
from repro.pyomp import PyOMPCompileError, PyOMPInternalError

from conftest import BENCH_THREADS

FIG5_APPS = ("fft", "jacobi", "lu", "md", "pi", "qsort", "bfs")
PROFILE = "test"


@pytest.mark.parametrize("mode", ALL_MODES, ids=lambda m: m.value)
@pytest.mark.parametrize("app", FIG5_APPS)
def test_fig5_omp4py(benchmark, app, mode):
    spec = get_app(app)
    benchmark.group = f"fig5:{app}"
    variant = spec.variant(mode)
    dt = mode.value == "compileddt"

    def setup():
        inputs = spec.inputs(PROFILE, dt=dt)
        inputs["threads"] = BENCH_THREADS
        return (), inputs

    benchmark.pedantic(variant, setup=setup, rounds=3)


@pytest.mark.parametrize("app", FIG5_APPS)
def test_fig5_pyomp_baseline(benchmark, app):
    spec = get_app(app)
    benchmark.group = f"fig5:{app}"
    try:
        variant = spec.pyomp_variant()
    except (PyOMPCompileError, PyOMPInternalError) as error:
        pytest.skip(f"PyOMP cannot run {app}: {error}")

    def setup():
        inputs = spec.inputs(PROFILE, dt=True)
        inputs["threads"] = BENCH_THREADS
        return (), inputs

    benchmark.pedantic(variant, setup=setup, rounds=3)
