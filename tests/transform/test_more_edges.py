"""Remaining edge coverage: atomic forms, nesting restrictions,
collapse+lastprivate, dump/debug options, and generated-code hygiene."""

import ast

import pytest

from repro import Mode, transform
from repro.errors import OmpSyntaxError


def atomic_symmetric_form(n):
    from repro import omp
    counter = 0
    with omp("parallel num_threads(3)"):
        for _ in range(n):
            with omp("atomic"):
                counter = counter + 1
    return counter


def atomic_reversed_operands(n):
    from repro import omp
    counter = 0
    with omp("parallel num_threads(2)"):
        for _ in range(n):
            with omp("atomic"):
                counter = 1 + counter
    return counter


def ordered_without_clause(n):
    from repro import omp
    with omp("parallel for"):
        for i in range(n):
            with omp("ordered"):
                pass


def ordered_outside_loop(n):
    from repro import omp
    with omp("parallel"):
        with omp("ordered"):
            pass


def collapse_with_lastprivate(rows, cols):
    from repro import omp
    last = -1
    with omp("parallel for collapse(2) lastprivate(last) "
             "num_threads(3) schedule(dynamic, 2)"):
        for i in range(rows):
            for j in range(cols):
                last = i * 1000 + j
    return last


def loop_with_continue(n):
    from repro import omp
    total = 0
    with omp("parallel for reduction(+:total) num_threads(2)"):
        for i in range(n):
            if i % 3 == 0:
                continue
            total += i
    return total


def taskwait_outside_task_context(n):
    from repro import omp
    omp("taskwait")
    return n


def nested_class_inside_function(n):
    from repro import omp
    total = 0

    class Helper:
        factor = 2

        def apply(self, value):
            return value * self.factor

    helper = Helper()
    with omp("parallel for reduction(+:total) num_threads(2)"):
        for i in range(n):
            total += helper.apply(i)
    return total


def generated_symbols_collide_attempt(n):
    from repro import omp
    # A user variable already carrying the internal prefix: the symbol
    # generator must avoid it.
    __omp_bounds_0 = 42
    total = 0
    with omp("parallel for reduction(+:total) num_threads(2)"):
        for i in range(n):
            total += __omp_bounds_0
    return total, __omp_bounds_0


class TestAtomicForms:
    def test_x_equals_x_plus_expr(self, runtime_mode):
        fn = transform(atomic_symmetric_form, runtime_mode)
        assert fn(80) == 240

    def test_x_equals_expr_plus_x(self, runtime_mode):
        fn = transform(atomic_reversed_operands, runtime_mode)
        assert fn(60) == 120


class TestOrderedPlacement:
    def test_ordered_requires_clause(self, runtime_mode):
        with pytest.raises(OmpSyntaxError, match="ordered clause"):
            transform(ordered_without_clause, runtime_mode)

    def test_ordered_requires_loop(self, runtime_mode):
        with pytest.raises(OmpSyntaxError, match="enclosing for"):
            transform(ordered_outside_loop, runtime_mode)


class TestCollapseLastprivate:
    def test_lastprivate_gets_final_linear_iteration(self, runtime_mode):
        fn = transform(collapse_with_lastprivate, runtime_mode)
        assert fn(4, 6) == 3 * 1000 + 5


class TestControlFlow:
    def test_continue_in_ws_loop(self, runtime_mode):
        fn = transform(loop_with_continue, runtime_mode)
        assert fn(20) == sum(i for i in range(20) if i % 3)

    def test_taskwait_in_serial_context(self, runtime_mode):
        fn = transform(taskwait_outside_task_context, runtime_mode)
        assert fn(5) == 5

    def test_class_definition_inside_function(self, runtime_mode):
        fn = transform(nested_class_inside_function, runtime_mode)
        assert fn(10) == 2 * sum(range(10))


class TestGeneratedCodeHygiene:
    def test_user_symbols_with_internal_prefix_survive(self,
                                                       runtime_mode):
        fn = transform(generated_symbols_collide_attempt, runtime_mode)
        assert fn(5) == (210, 42)

    def test_generated_source_parses_and_has_no_directives(self):
        fn = transform(loop_with_continue, Mode.HYBRID)
        tree = ast.parse(fn.__omp_source__)
        for node in ast.walk(tree):
            if isinstance(node, ast.Call) and isinstance(node.func,
                                                         ast.Name):
                assert node.func.id != "omp", "directive survived"

    def test_dump_and_debug_flags_do_not_break(self, capsys):
        transform(loop_with_continue, Mode.COMPILED_DT, dump=True,
                  debug=True)
        captured = capsys.readouterr()
        assert "generated code" in captured.err
