"""Sample exporters: collapsed stacks, speedscope, Chrome trace.

Three flamegraph-ready formats over one :class:`~repro.sampling.sampler.
FoldedStore`:

* :func:`collapsed_text` — Brendan-Gregg folded stacks
  (``frame;frame;frame count``), the input of ``flamegraph.pl`` and
  most modern flamegraph viewers.  Waiting samples carry a trailing
  ``[wait]`` frame so CPU and wait time separate visually.
* :func:`speedscope_profile` — a https://speedscope.app "sampled"
  profile document, one profile per sample state, weights in seconds.
* :func:`chrome_trace_samples` — instant events on the Trace Event
  Format timeline (validated by the same
  :func:`repro.ompt.exporters.validate_chrome_trace` used for runtime
  traces), so samples can be overlaid on an OMPT trace in Perfetto.

Each format has a schema validator used by the test suite and the
profile CLI.
"""

from __future__ import annotations

import json

SPEEDSCOPE_SCHEMA = "https://www.speedscope.app/file-format-schema.json"


def _clean(frame: str) -> str:
    """Folded syntax reserves ``;`` and the trailing space+count."""
    return frame.replace(";", ",").strip() or "?"


# ---------------------------------------------------------------------------
# Collapsed stacks


def collapsed_text(store) -> str:
    """Folded-stack lines, most frequent first."""
    lines = []
    ranked = sorted(store.stacks.items(),
                    key=lambda item: item[1], reverse=True)
    for (stack, state), count in ranked:
        frames = [_clean(frame) for frame in stack]
        if state != "cpu":
            frames.append(f"[{state}]")
        lines.append(f"{';'.join(frames)} {count}")
    return "\n".join(lines) + ("\n" if lines else "")


def validate_collapsed(text: str) -> list[str]:
    """Schema-check folded output; returns problems ([] == valid)."""
    problems: list[str] = []
    for number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        stack_text, _sep, count_text = line.rpartition(" ")
        if not stack_text:
            problems.append(f"line {number}: no stack before the count")
            continue
        try:
            count = int(count_text)
        except ValueError:
            problems.append(f"line {number}: count {count_text!r} is "
                            f"not an integer")
            continue
        if count <= 0:
            problems.append(f"line {number}: non-positive count {count}")
        if any(not frame for frame in stack_text.split(";")):
            problems.append(f"line {number}: empty frame in stack")
    return problems


# ---------------------------------------------------------------------------
# Speedscope


def speedscope_profile(store, *, interval: float,
                       name: str = "omp4py samples") -> dict:
    """A speedscope file with one sampled profile per sample state."""
    frame_index: dict[str, int] = {}
    frames: list[dict] = []

    def index_of(label: str) -> int:
        position = frame_index.get(label)
        if position is None:
            position = len(frames)
            frame_index[label] = position
            frames.append({"name": label})
        return position

    by_state: dict[str, tuple[list, list]] = {}
    for (stack, state), count in sorted(store.stacks.items(),
                                        key=lambda item: -item[1]):
        samples, weights = by_state.setdefault(state, ([], []))
        samples.append([index_of(label) for label in stack])
        weights.append(count * interval)

    profiles = []
    for state in sorted(by_state):
        samples, weights = by_state[state]
        total = sum(weights)
        profiles.append({
            "type": "sampled",
            "name": f"{name} [{state}]",
            "unit": "seconds",
            "startValue": 0,
            "endValue": total,
            "samples": samples,
            "weights": weights,
        })
    return {
        "$schema": SPEEDSCOPE_SCHEMA,
        "name": name,
        "exporter": "repro.sampling",
        "shared": {"frames": frames},
        "profiles": profiles,
    }


def validate_speedscope(payload) -> list[str]:
    """Schema-check a speedscope document; returns problems."""
    problems: list[str] = []
    if not isinstance(payload, dict):
        return ["top level must be an object"]
    if payload.get("$schema") != SPEEDSCOPE_SCHEMA:
        problems.append(f"$schema must be {SPEEDSCOPE_SCHEMA!r}")
    shared = payload.get("shared")
    frames = shared.get("frames") if isinstance(shared, dict) else None
    if not isinstance(frames, list):
        return [*problems, "shared.frames must be a list"]
    for index, frame in enumerate(frames):
        if not isinstance(frame, dict) or not isinstance(
                frame.get("name"), str):
            problems.append(f"shared.frames[{index}]: missing name")
    profiles = payload.get("profiles")
    if not isinstance(profiles, list):
        return [*problems, "profiles must be a list"]
    for number, profile in enumerate(profiles):
        where = f"profiles[{number}]"
        if not isinstance(profile, dict):
            problems.append(f"{where}: not an object")
            continue
        if profile.get("type") != "sampled":
            problems.append(f"{where}: type must be 'sampled'")
        samples = profile.get("samples")
        weights = profile.get("weights")
        if not isinstance(samples, list) or not isinstance(weights, list):
            problems.append(f"{where}: samples/weights must be lists")
            continue
        if len(samples) != len(weights):
            problems.append(f"{where}: {len(samples)} samples vs "
                            f"{len(weights)} weights")
        for position, sample in enumerate(samples):
            if not isinstance(sample, list) or any(
                    not isinstance(ref, int) or not
                    0 <= ref < len(frames) for ref in sample):
                problems.append(f"{where}.samples[{position}]: frame "
                                f"reference out of range")
                break
        if any(not isinstance(weight, (int, float)) or weight < 0
               for weight in weights):
            problems.append(f"{where}: negative or non-numeric weight")
    return problems


# ---------------------------------------------------------------------------
# Chrome trace


def chrome_trace_samples(store, *, interval: float, anchor=None,
                         metadata=None, pid: int = 1) -> dict:
    """Samples as instant events on the Trace Event timeline."""
    rows: list[dict] = []
    threads = sorted({thread for _t, thread, _s, _stack
                      in store.samples})
    tids = {thread: number for number, thread in enumerate(threads)}
    for thread in threads:
        rows.append({"name": "thread_name", "ph": "M", "pid": pid,
                     "tid": tids[thread], "ts": 0,
                     "args": {"name": f"sampled thread {thread}"}})
    for t_rel, thread, state, stack in store.samples:
        rows.append({
            "name": stack[-1] if stack else "?",
            "cat": f"sample.{state}", "ph": "i", "s": "t",
            "ts": t_rel * 1e6, "pid": pid, "tid": tids[thread],
            "args": {"state": state, "stack": list(stack)},
        })
    other = {
        "producer": "repro.sampling",
        "events": len(rows),
        "dropped_events": store.dropped_samples,
        "threads_observed": len(threads),
        "sample_interval_s": interval,
    }
    from repro.runtime.gilstate import current_backend
    other["backend"] = current_backend().value
    if anchor is not None:
        unix_s, monotonic_s = anchor
        other["monotonic_to_unix_offset_s"] = unix_s - monotonic_s
        other["epoch_start_unix_s"] = unix_s
    if metadata:
        other.update(metadata)
    return {"traceEvents": rows, "displayTimeUnit": "ms",
            "otherData": other}


# ---------------------------------------------------------------------------
# File writers


def write_collapsed(path, store) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(collapsed_text(store))


def write_speedscope(path, store, *, interval: float,
                     name: str = "omp4py samples") -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(speedscope_profile(store, interval=interval,
                                     name=name), handle)
