"""OpenMP lock API objects (simple and nestable locks).

``omp_init_lock``/``omp_init_nest_lock`` return these objects; the rest
of the lock API operates on them.  A nestable lock may be re-acquired by
its owner; ``omp_test_nest_lock`` returns the new nesting count, per the
OpenMP specification.

Locks created through a runtime dispatch the OMPT-style
``mutex_acquire``/``mutex_acquired``/``mutex_released`` callbacks when
a tool is attached (see :mod:`repro.ompt.hooks`); the uninstrumented
path reads a single attribute.
"""

from __future__ import annotations

import threading
import time

from repro.errors import OmpRuntimeError
from repro.runtime.trace import caller_site


def _tool_of(runtime):
    return runtime.tool if runtime is not None else None


def _diag_of(runtime):
    return runtime.diag if runtime is not None else None


def _tracer_of(runtime):
    """The runtime's tracer when armed, else ``None`` (one attribute
    read on the disarmed path, matching the tool/diag discipline)."""
    if runtime is None:
        return None
    tracer = runtime.tracer
    return tracer if tracer.enabled else None


class OmpLock:
    """A simple OpenMP lock."""

    __slots__ = ("_lock", "_destroyed", "_runtime")

    def __init__(self, lowlevel, runtime=None):
        self._lock = lowlevel.make_mutex()
        self._destroyed = False
        self._runtime = runtime

    def _check(self) -> None:
        if self._destroyed:
            raise OmpRuntimeError("lock used after omp_destroy_lock")

    def set(self) -> None:
        self._check()
        tool = _tool_of(self._runtime)
        diag = _diag_of(self._runtime)
        tracer = _tracer_of(self._runtime)
        if tool is None and diag is None and tracer is None:
            self._lock.acquire()
            return
        thread = self._runtime.get_thread_num()
        if self._lock.acquire(blocking=False):
            if tool is not None:
                tool.mutex_acquired(thread, "lock", id(self), 0.0)
            if tracer is not None:
                tracer.record("mutex_acquired", thread, "lock",
                              id(self), 0.0, *caller_site())
            if diag is not None:
                diag.resource_acquired(id(self))
            return
        if tool is not None:
            tool.mutex_acquire(thread, "lock", id(self))
        begin = time.perf_counter()
        if diag is not None:
            record = diag.block_enter("lock", id(self),
                                      thread_num=thread)
            record.sleeping = True
            try:
                self._lock.acquire()
            finally:
                diag.block_exit()
            diag.resource_acquired(id(self))
        else:
            self._lock.acquire()
        wait = time.perf_counter() - begin
        if tool is not None:
            tool.mutex_acquired(thread, "lock", id(self), wait)
        if tracer is not None:
            tracer.record("mutex_acquired", thread, "lock", id(self),
                          wait, *caller_site())

    def unset(self) -> None:
        self._check()
        diag = _diag_of(self._runtime)
        if diag is not None:
            diag.resource_released(id(self))
        self._lock.release()
        tracer = _tracer_of(self._runtime)
        if tracer is not None:
            tracer.record("mutex_released",
                          self._runtime.get_thread_num(), "lock",
                          id(self))
        tool = _tool_of(self._runtime)
        if tool is not None:
            tool.mutex_released(self._runtime.get_thread_num(), "lock",
                                id(self))

    def test(self) -> bool:
        self._check()
        acquired = self._lock.acquire(blocking=False)
        if acquired:
            tool = _tool_of(self._runtime)
            if tool is not None:
                tool.mutex_acquired(self._runtime.get_thread_num(),
                                    "lock", id(self), 0.0)
            tracer = _tracer_of(self._runtime)
            if tracer is not None:
                tracer.record("mutex_acquired",
                              self._runtime.get_thread_num(), "lock",
                              id(self), 0.0, *caller_site())
            diag = _diag_of(self._runtime)
            if diag is not None:
                diag.resource_acquired(id(self))
        return acquired

    def destroy(self) -> None:
        self._destroyed = True


class OmpNestLock:
    """A nestable OpenMP lock (owner may re-acquire)."""

    __slots__ = ("_lock", "_owner", "_count", "_destroyed", "_guard",
                 "_runtime")

    def __init__(self, lowlevel, runtime=None):
        self._lock = lowlevel.make_mutex()
        self._guard = threading.Lock()
        self._owner = None
        self._count = 0
        self._destroyed = False
        self._runtime = runtime

    def _check(self) -> None:
        if self._destroyed:
            raise OmpRuntimeError("lock used after omp_destroy_nest_lock")

    def _dispatch_acquired(self, wait_time: float) -> None:
        tool = _tool_of(self._runtime)
        if tool is not None:
            tool.mutex_acquired(self._runtime.get_thread_num(),
                                "nest_lock", id(self), wait_time)
        tracer = _tracer_of(self._runtime)
        if tracer is not None:
            tracer.record("mutex_acquired",
                          self._runtime.get_thread_num(), "nest_lock",
                          id(self), wait_time, *caller_site())

    def set(self) -> None:
        self._check()
        me = threading.get_ident()
        with self._guard:
            if self._owner == me:
                self._count += 1
                self._dispatch_acquired(0.0)
                return
        tool = _tool_of(self._runtime)
        diag = _diag_of(self._runtime)
        if tool is None and diag is None \
                and _tracer_of(self._runtime) is None:
            self._lock.acquire()
        elif not self._lock.acquire(blocking=False):
            if tool is not None:
                tool.mutex_acquire(self._runtime.get_thread_num(),
                                   "nest_lock", id(self))
            begin = time.perf_counter()
            if diag is not None:
                record = diag.block_enter("nest_lock", id(self))
                record.sleeping = True
                try:
                    self._lock.acquire()
                finally:
                    diag.block_exit()
            else:
                self._lock.acquire()
            self._dispatch_acquired(time.perf_counter() - begin)
        else:
            self._dispatch_acquired(0.0)
        if diag is not None:
            diag.resource_acquired(id(self))
        with self._guard:
            self._owner = me
            self._count = 1

    def unset(self) -> None:
        self._check()
        me = threading.get_ident()
        with self._guard:
            if self._owner != me or self._count == 0:
                raise OmpRuntimeError(
                    "omp_unset_nest_lock by a thread that does not own it")
            self._count -= 1
            if self._count == 0:
                self._owner = None
                diag = _diag_of(self._runtime)
                if diag is not None:
                    diag.resource_released(id(self))
                self._lock.release()
                tracer = _tracer_of(self._runtime)
                if tracer is not None:
                    tracer.record("mutex_released",
                                  self._runtime.get_thread_num(),
                                  "nest_lock", id(self))
                tool = _tool_of(self._runtime)
                if tool is not None:
                    tool.mutex_released(self._runtime.get_thread_num(),
                                        "nest_lock", id(self))

    def test(self) -> int:
        """Acquire if possible; return the new nesting count, else 0."""
        self._check()
        me = threading.get_ident()
        with self._guard:
            if self._owner == me:
                self._count += 1
                self._dispatch_acquired(0.0)
                return self._count
        if self._lock.acquire(blocking=False):
            with self._guard:
                self._owner = me
                self._count = 1
            diag = _diag_of(self._runtime)
            if diag is not None:
                diag.resource_acquired(id(self))
            self._dispatch_acquired(0.0)
            return 1
        return 0

    def destroy(self) -> None:
        self._destroyed = True
