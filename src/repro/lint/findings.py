"""Findings model and rule catalogue of the ``omplint`` static checker.

Every diagnostic the linter can emit is declared here once, with a
stable rule id, a default severity, and a one-line summary.  The rule
engine attaches concrete locations and variable names; the reporters,
the CLI exit-code logic, and the documentation all consult this table.

Severities follow the CI contract: ``error`` findings ("strict"
findings) describe code that races or deadlocks under the OpenMP
semantics the transformer implements, and gate merges; ``warning``
findings describe clauses that are ineffective as written.
"""

from __future__ import annotations

import dataclasses
import enum


class Severity(enum.Enum):
    """How bad a finding is; ``ERROR`` findings fail strict/CI runs."""

    WARNING = "warning"
    ERROR = "error"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclasses.dataclass(frozen=True)
class Rule:
    """One entry of the rule catalogue."""

    id: str
    name: str
    severity: Severity
    summary: str


#: The rule catalogue.  Ids are stable; never renumber.
RULES: dict[str, Rule] = {
    rule.id: rule for rule in (
        Rule("OMP100", "directive-syntax", Severity.ERROR,
             "a directive string fails to parse or validate"),
        Rule("OMP101", "shared-write", Severity.ERROR,
             "unsynchronized write to a shared variable inside a "
             "parallel region"),
        Rule("OMP102", "private-use-before-init", Severity.ERROR,
             "a private variable is read before its first assignment "
             "in the region"),
        Rule("OMP103", "unused-firstprivate", Severity.WARNING,
             "a firstprivate variable's captured value is never read "
             "in the region"),
        Rule("OMP104", "unused-lastprivate", Severity.WARNING,
             "a lastprivate variable is never assigned in the loop "
             "body, so there is no last value to write back"),
        Rule("OMP105", "illegal-nesting", Severity.ERROR,
             "a worksharing construct is closely nested inside another "
             "worksharing, critical, ordered, master or task region"),
        Rule("OMP106", "barrier-in-sync", Severity.ERROR,
             "a barrier inside master/critical/single/ordered or a "
             "worksharing body (a deadlock shape: not every thread "
             "reaches it)"),
        Rule("OMP107", "loop-index-write", Severity.ERROR,
             "the index of a worksharing loop is modified inside the "
             "loop body"),
    )
}


@dataclasses.dataclass(frozen=True)
class Finding:
    """One concrete diagnostic, anchored to a source location."""

    rule: str
    message: str
    lineno: int
    col: int = 0
    variable: str | None = None
    function: str | None = None
    filename: str = "<unknown>"
    directive: str | None = None

    @property
    def severity(self) -> Severity:
        return RULES[self.rule].severity

    @property
    def name(self) -> str:
        return RULES[self.rule].name

    def location(self) -> str:
        return f"{self.filename}:{self.lineno}:{self.col + 1}"

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "name": self.name,
            "severity": self.severity.value,
            "message": self.message,
            "filename": self.filename,
            "lineno": self.lineno,
            "col": self.col,
            "variable": self.variable,
            "function": self.function,
            "directive": self.directive,
        }

    def __str__(self) -> str:
        suffix = f" [{self.variable}]" if self.variable else ""
        return (f"{self.location()}: {self.rule} {self.severity.value}: "
                f"{self.message}{suffix}")


def worst_severity(findings: list[Finding]) -> Severity | None:
    """The highest severity present, or ``None`` for a clean run."""
    if any(f.severity is Severity.ERROR for f in findings):
        return Severity.ERROR
    if findings:
        return Severity.WARNING
    return None
