"""Lowering of synchronization constructs: ``critical``, ``atomic``,
``barrier``, ``taskwait``, and ``flush``."""

from __future__ import annotations

import ast

from repro.directives.model import Directive
from repro.errors import OmpSyntaxError
from repro.transform import astutil
from repro.transform.context import TransformContext

#: Constructs a barrier may not be (lexically) nested inside.
_NO_BARRIER_INSIDE = ("for", "sections", "single", "master", "critical",
                      "ordered", "task", "atomic")


def handle_critical(node: ast.With, directive: Directive,
                    ctx: TransformContext) -> list[ast.stmt]:
    from repro.transform.rewriter import transform_statements

    name = directive.arguments[0] if directive.arguments else ""
    with ctx.enter_construct("critical"):
        body = transform_statements(node.body, ctx)
    enter = astutil.rt_call_stmt(ctx.rt_name, "critical_enter",
                                 [astutil.constant(name)])
    leave = astutil.rt_call_stmt(ctx.rt_name, "critical_exit",
                                 [astutil.constant(name)])
    result = [enter, astutil.try_finally(body or [ast.Pass()], [leave])]
    for stmt in result:
        astutil.fix_locations(stmt, node)
    return result


def handle_atomic(node: ast.With, directive: Directive,
                  ctx: TransformContext) -> list[ast.stmt]:
    if len(node.body) != 1 or not _is_atomic_statement(node.body[0]):
        raise OmpSyntaxError(
            "atomic requires exactly one update statement "
            "(x += expr, x[i] op= expr, or x = x op expr)",
            directive=directive.source)
    enter = astutil.rt_call_stmt(ctx.rt_name, "atomic_enter")
    leave = astutil.rt_call_stmt(ctx.rt_name, "atomic_exit")
    result = [enter, astutil.try_finally(list(node.body), [leave])]
    for stmt in result:
        astutil.fix_locations(stmt, node)
    return result


def _is_atomic_statement(stmt: ast.stmt) -> bool:
    if isinstance(stmt, ast.AugAssign):
        return isinstance(stmt.target,
                          (ast.Name, ast.Subscript, ast.Attribute))
    if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
        target = stmt.targets[0]
        value = stmt.value
        # x = x op expr   /   x = expr op x
        if isinstance(target, ast.Name) and isinstance(value, ast.BinOp):
            for side in (value.left, value.right):
                if isinstance(side, ast.Name) and side.id == target.id:
                    return True
    return False


def handle_barrier(node: ast.Expr, directive: Directive,
                   ctx: TransformContext) -> list[ast.stmt]:
    ctx.require_not_inside(directive.source, _NO_BARRIER_INSIDE)
    stmt = astutil.rt_call_stmt(ctx.rt_name, "barrier")
    astutil.fix_locations(stmt, node)
    return [stmt]


def handle_taskwait(node: ast.Expr, directive: Directive,
                    ctx: TransformContext) -> list[ast.stmt]:
    stmt = astutil.rt_call_stmt(ctx.rt_name, "task_wait")
    astutil.fix_locations(stmt, node)
    return [stmt]


def handle_flush(node: ast.Expr, directive: Directive,
                 ctx: TransformContext) -> list[ast.stmt]:
    arguments = [astutil.constant(name) for name in directive.arguments]
    stmt = astutil.rt_call_stmt(ctx.rt_name, "flush", arguments)
    astutil.fix_locations(stmt, node)
    return [stmt]
