"""Property tests over the directive parser: round-trips, clause-order
invariance, and no-crash fuzzing."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.directives import parse_directive
from repro.errors import OmpSyntaxError

identifiers = st.from_regex(r"[a-z][a-z0-9_]{0,8}", fullmatch=True)

varlists = st.lists(identifiers, min_size=1, max_size=4, unique=True)


@st.composite
def parallel_directives(draw):
    """Random valid parallel directives with non-conflicting clauses."""
    names = draw(st.lists(identifiers, min_size=3, max_size=9,
                          unique=True))
    pool = list(names)
    clauses = []
    if draw(st.booleans()):
        clauses.append(f"num_threads({draw(st.integers(1, 64))})")
    if draw(st.booleans()) and pool:
        take = draw(st.integers(1, min(2, len(pool))))
        chosen, pool = pool[:take], pool[take:]
        clauses.append(f"private({', '.join(chosen)})")
    if draw(st.booleans()) and pool:
        take = draw(st.integers(1, min(2, len(pool))))
        chosen, pool = pool[:take], pool[take:]
        clauses.append(f"firstprivate({', '.join(chosen)})")
    if draw(st.booleans()) and pool:
        op = draw(st.sampled_from(["+", "*", "min", "max", "&&"]))
        chosen, pool = pool[:1], pool[1:]
        clauses.append(f"reduction({op}: {chosen[0]})")
    order = draw(st.permutations(clauses))
    return "parallel " + " ".join(order)


class TestRoundTripProperties:
    @settings(max_examples=80, deadline=None)
    @given(text=parallel_directives())
    def test_str_reparses_equivalently(self, text):
        first = parse_directive(text)
        second = parse_directive(str(first))
        assert second.name == first.name
        assert sorted(str(c) for c in second.clauses) == sorted(
            str(c) for c in first.clauses)

    @settings(max_examples=60, deadline=None)
    @given(text=parallel_directives())
    def test_clause_order_does_not_matter(self, text):
        directive = parse_directive(text)
        reversed_text = "parallel " + " ".join(
            str(c) for c in reversed(directive.clauses))
        again = parse_directive(reversed_text)
        assert sorted(str(c) for c in again.clauses) == sorted(
            str(c) for c in directive.clauses)

    @settings(max_examples=60, deadline=None)
    @given(names=varlists)
    def test_private_vars_preserved(self, names):
        directive = parse_directive(f"parallel private({', '.join(names)})")
        assert directive.clause_vars("private") == tuple(names)


class TestFuzzing:
    @settings(max_examples=150, deadline=None)
    @given(text=st.text(
        alphabet="parleshcdufo ()+:,;*&|^_019", max_size=40))
    def test_never_crashes_only_omp_syntax_errors(self, text):
        """Arbitrary garbage either parses or raises OmpSyntaxError."""
        try:
            parse_directive(text)
        except OmpSyntaxError:
            pass

    @settings(max_examples=80, deadline=None)
    @given(text=st.text(max_size=30))
    def test_fully_arbitrary_text(self, text):
        try:
            parse_directive(text)
        except OmpSyntaxError:
            pass

    @settings(max_examples=50, deadline=None)
    @given(junk=st.text(alphabet="():,;", max_size=10))
    def test_valid_prefix_with_junk_suffix(self, junk):
        try:
            parse_directive("parallel " + junk)
        except OmpSyntaxError:
            pass


class TestWhitespaceInvariance:
    @settings(max_examples=40, deadline=None)
    @given(spaces=st.integers(1, 5))
    def test_extra_spaces(self, spaces):
        gap = " " * spaces
        directive = parse_directive(
            f"parallel{gap}for{gap}reduction(+:{gap}x{gap}){gap}ordered")
        assert directive.name == "parallel for"
        assert directive.has_clause("ordered")

    def test_nowait_invalid_on_combined_directive(self):
        # OpenMP: combined parallel-worksharing forms take no nowait
        # (the region end is the only barrier).
        with pytest.raises(OmpSyntaxError, match="nowait"):
            parse_directive("parallel for nowait")

    def test_tabs_and_newlines(self):
        directive = parse_directive("parallel\tfor\nreduction(+: x)")
        assert directive.name == "parallel for"
