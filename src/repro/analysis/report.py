"""Paper-style reports: one command per table/figure.

Usage::

    python -m repro.analysis.report table1
    python -m repro.analysis.report fig5 [--apps pi,fft] [--threads 1,2,4]
    python -m repro.analysis.report fig6
    python -m repro.analysis.report fig7 [--chunk 300]
    python -m repro.analysis.report fig8 [--nodes 1,2,4] [--threads 4]
    python -m repro.analysis.report headline

Each command prints the measured wall time and the projected no-GIL
time (the quantity comparable to the paper's figures; see DESIGN.md).
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis import features, runner, timing
from repro.apps import get_app
from repro.modes import ALL_MODES

FIG5_APPS = ("fft", "jacobi", "lu", "md", "pi", "qsort", "bfs")
FIG6_APPS = ("clustering", "wordcount")


def _parse_int_list(text: str) -> list[int]:
    return [int(part) for part in text.split(",") if part]


def _format_seconds(value: float | None) -> str:
    return f"{value:10.4f}" if value is not None else " " * 9 + "-"


def print_series_table(points, thread_counts, series_order,
                       out=None) -> None:
    """Rows = series, columns = thread counts; wall and projected."""
    out = out if out is not None else sys.stdout
    by_key = {}
    errors = {}
    backends = set()
    for point in points:
        if point.error is not None:
            errors[point.series] = point.error
        if point.measurement is not None:
            backends.add(point.measurement.backend)
        by_key[point.series, point.threads] = point
    if "nogil" in backends:
        print("    (free-threaded backend: proj[s] is the *measured* "
              "wall time; the projection model survives as a "
              "cross-check — see repro.analysis.validate)", file=out)
    header = "series".ljust(12) + "".join(
        f"{f'{t} thr':>24}" for t in thread_counts)
    print(header, file=out)
    print(" " * 12 + "".join(f"{'wall[s]':>12}{'proj[s]':>12}"
                             for _ in thread_counts), file=out)
    for series in series_order:
        cells = []
        for threads in thread_counts:
            point = by_key.get((series, threads))
            if point is None or point.measurement is None:
                cells.append(" " * 11 + "-" + " " * 11 + "-")
            else:
                cells.append(_format_seconds(point.wall) + "  "
                             + _format_seconds(point.projected))
        print(series.ljust(12) + "".join(cells), file=out)
        if series in errors:
            print(f"    !! {errors[series]}", file=out)
    bad = [p for p in points if p.verified is False]
    if bad:
        print(f"    !! {len(bad)} measurement(s) FAILED verification",
              file=out)
    top = thread_counts[-1]
    imbalances = []
    for series in series_order:
        point = by_key.get((series, top))
        if point is not None and point.measurement is not None \
                and point.measurement.regions:
            imbalances.append((series, point.measurement.imbalance))
    if imbalances:
        print(f"    load imbalance at {top} threads "
              f"(max/mean per-thread CPU): "
              + "  ".join(f"{series}={value:.2f}"
                          for series, value in imbalances), file=out)
    print(render_speedup_chart(points, thread_counts, series_order),
          file=out)


def render_speedup_chart(points, thread_counts, series_order,
                         width: int = 34) -> str:
    """ASCII bars of projected self-speedup per series (the visual
    shape of the paper's log-scale curves, terminal edition)."""
    by_key = {(p.series, p.threads): p for p in points}
    lines = ["    projected self-speedup "
             f"(x{thread_counts[-1]} threads vs x{thread_counts[0]}):"]
    peak = 1.0
    speedups: dict[str, float] = {}
    for series in series_order:
        base = by_key.get((series, thread_counts[0]))
        top = by_key.get((series, thread_counts[-1]))
        if base and top and base.projected and top.projected:
            speedups[series] = base.projected / top.projected
            peak = max(peak, speedups[series])
    for series in series_order:
        value = speedups.get(series)
        if value is None:
            continue
        bar = "#" * max(1, int(value / peak * width))
        lines.append(f"    {series:<11} {bar} {value:.2f}x")
    return "\n".join(lines)


def cmd_table1(args) -> None:
    print("TABLE I — STATIC CHARACTERISTICS OF EVALUATED BENCHMARKS")
    print(f"{'bench':<8} {'OpenMP features (extracted)':<52} "
          f"{'Synchronization':<18}")
    for row in features.table1_rows():
        print(f"{row.name:<8} {row.features:<52} "
              f"{row.synchronization:<18}")
    print()
    print("Paper's rows for comparison:")
    for name in FIG5_APPS:
        spec = get_app(name)
        if spec.table1:
            print(f"{name:<8} {spec.table1[0]:<52} {spec.table1[1]:<18}")


def points_to_json(points) -> list[dict]:
    """Serializable form of a sweep (the ``--json`` output)."""
    rows = []
    for point in points:
        measurement = point.measurement
        rows.append({
            "app": point.app,
            "series": point.series,
            "threads": point.threads,
            "wall_s": point.wall,
            "projected_s": point.projected,
            "serialized_cpu_s": (measurement.serialized_cpu
                                 if measurement else None),
            "critical_cpu_s": (measurement.critical_cpu
                               if measurement else None),
            "regions": measurement.regions if measurement else None,
            "imbalance": measurement.imbalance if measurement else None,
            "backend": measurement.backend if measurement else None,
            "model_projected_s": (measurement.model_projected
                                  if measurement else None),
            "verified": point.verified,
            "error": point.error,
        })
    return rows


def _dump_json(args, payload) -> None:
    if getattr(args, "json", None):
        import json
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
        print(f"(json written to {args.json})")


def cmd_fig5(args) -> None:
    apps = args.apps.split(",") if args.apps else list(FIG5_APPS)
    thread_counts = _parse_int_list(args.threads)
    print(f"FIG. 5 — SCALABILITY OF PARALLEL NUMERICAL APPLICATIONS "
          f"(profile={args.profile})")
    payload = {}
    for name in apps:
        spec = get_app(name)
        print(f"\n== {name} ({spec.title}) ==")
        points = runner.sweep(spec, thread_counts, args.profile,
                              repeats=args.repeats)
        series = [m.value for m in ALL_MODES] + ["pyomp"]
        print_series_table(points, thread_counts, series)
        payload[name] = points_to_json(points)
    _dump_json(args, payload)


def cmd_fig6(args) -> None:
    apps = args.apps.split(",") if args.apps else list(FIG6_APPS)
    thread_counts = _parse_int_list(args.threads)
    print(f"FIG. 6 — CLUSTERING COEFFICIENT AND WORDCOUNT "
          f"(profile={args.profile})")
    payload = {}
    for name in apps:
        spec = get_app(name)
        print(f"\n== {name} ({spec.title}) ==")
        points = runner.sweep(spec, thread_counts, args.profile,
                              repeats=args.repeats)
        series = [m.value for m in ALL_MODES] + ["pyomp"]
        print_series_table(points, thread_counts, series)
        payload[name] = points_to_json(points)
    _dump_json(args, payload)


def cmd_fig7(args) -> None:
    thread_counts = _parse_int_list(args.threads)
    policies = ("static", "dynamic", "guided")
    apps = args.apps.split(",") if args.apps else list(FIG6_APPS)
    print(f"FIG. 7 — SCHEDULING POLICIES (chunk={args.chunk}, "
          f"profile={args.profile})")
    for name in apps:
        spec = get_app(name)
        print(f"\n== {name} ==")
        grids = runner.schedule_sweep(spec, thread_counts, policies,
                                      args.chunk, args.profile,
                                      repeats=args.repeats)
        # Speedups relative to Pure, 1 thread, static (the paper's
        # normalization).
        baseline = next(
            p for p in grids["static"]
            if p.series == "pure" and p.threads == thread_counts[0])
        base_time = baseline.projected
        print(f"{'policy':<9} {'series':<12}"
              + "".join(f"{f'{t} thr':>10}" for t in thread_counts))
        for policy in policies:
            by_key = {(p.series, p.threads): p for p in grids[policy]}
            for mode in ALL_MODES:
                speedups = []
                for threads in thread_counts:
                    point = by_key.get((mode.value, threads))
                    speedups.append(
                        f"{base_time / point.projected:>9.2f}x"
                        if point and point.projected else f"{'-':>10}")
                print(f"{policy:<9} {mode.value:<12}"
                      + "".join(speedups))


def cmd_fig8(args) -> None:
    from repro.apps import jacobi_mpi
    node_counts = _parse_int_list(args.nodes)
    threads = _parse_int_list(args.threads)[0]
    sizes = jacobi_mpi.SIZES[args.profile]
    print(f"FIG. 8 — HYBRID MPI/OPENMP JACOBI "
          f"({threads} threads per node, n={sizes['n']})")
    print(f"{'mode':<12}" + "".join(f"{f'{c} nodes':>24}"
                                    for c in node_counts))
    print(" " * 12 + "".join(f"{'wall[s]':>12}{'proj[s]':>12}"
                             for _ in node_counts))
    for mode in ALL_MODES:
        cells = []
        for nodes in node_counts:
            measurement = timing.measure_mpi(
                jacobi_mpi.solve, nodes, repeats=args.repeats,
                nodes=nodes, threads=threads, mode=mode, **sizes)
            ok = jacobi_mpi.verify(measurement.value, sizes["n"])
            cell = (_format_seconds(measurement.wall) + "  "
                    + _format_seconds(measurement.projected))
            cells.append(cell if ok else cell + "!")
        print(f"{mode.value:<12}" + "".join(cells))


def cmd_headline(args) -> None:
    """The Section IV-A headline numbers, from a compact sweep."""
    thread_counts = _parse_int_list(args.threads)
    top = thread_counts[-1]
    apps = args.apps.split(",") if args.apps else list(FIG5_APPS)
    rows: dict[str, dict] = {}
    for name in apps:
        spec = get_app(name)
        rows[name] = {}
        points = runner.sweep(spec, thread_counts, args.profile,
                              repeats=args.repeats)
        for point in points:
            if point.measurement is not None:
                rows[name][point.series, point.threads] = point.projected
    print(f"HEADLINE COMPARISONS (projected times, profile="
          f"{args.profile}, {top} threads)")

    def ratio(name, series_a, series_b, threads):
        a = rows[name].get((series_a, threads))
        b = rows[name].get((series_b, threads))
        return a / b if a and b else None

    pure_speedups = {
        name: rows[name].get(("pure", thread_counts[0]), 0)
        / rows[name][("pure", top)]
        for name in apps if rows[name].get(("pure", top))}
    best = max(pure_speedups, key=pure_speedups.get)
    print(f"  Pure max self-speedup at {top} threads: "
          f"{pure_speedups[best]:.1f}x ({best})  [paper: 3.6x, jacobi]")
    compiled_vs_pure = [r for name in apps
                        if (r := ratio(name, "pure", "compiled", top))]
    if compiled_vs_pure:
        mean = sum(compiled_vs_pure) / len(compiled_vs_pure)
        print(f"  Compiled vs Pure at {top} threads: {mean:.1f}x faster "
              f"on average  [paper: 2.5x]")
    dt_vs_pure = [r for name in apps
                  if (r := ratio(name, "pure", "compileddt", top))]
    if dt_vs_pure:
        mean = sum(dt_vs_pure) / len(dt_vs_pure)
        print(f"  CompiledDT vs Pure at {top} threads: {mean:.0f}x faster "
              f"on average  [paper: 785x]")
    pyomp_vs_dt = [r for name in apps
                   if (r := ratio(name, "pyomp", "compileddt", top))]
    if pyomp_vs_dt:
        mean = sum(pyomp_vs_dt) / len(pyomp_vs_dt)
        print(f"  PyOMP vs CompiledDT at {top} threads: CompiledDT "
              f"{(mean - 1) * 100:+.1f}% faster on average  "
              f"[paper: +4.5%]")


def cmd_check(args) -> None:
    """Machine-checked paper-shape verdicts (see shapecheck module)."""
    from repro.analysis import shapecheck
    results = shapecheck.run_all(args.profile, repeats=args.repeats)
    for result in results:
        print(result.line())
    failed = sum(1 for result in results if not result.passed)
    print(f"\n{len(results) - failed}/{len(results)} shape claims hold")
    _dump_json(args, [{"claim": r.claim, "passed": r.passed,
                       "detail": r.detail} for r in results])
    if failed:
        raise SystemExit(1)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.report",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("command",
                        choices=("table1", "fig5", "fig6", "fig7", "fig8",
                                 "headline", "check"))
    parser.add_argument("--profile", default="default",
                        choices=("test", "default", "paper"))
    parser.add_argument("--threads", default="1,2,4",
                        help="comma-separated thread counts")
    parser.add_argument("--nodes", default="1,2,4,8",
                        help="node counts for fig8")
    parser.add_argument("--apps", default=None,
                        help="comma-separated app subset")
    parser.add_argument("--chunk", type=int, default=300,
                        help="chunk size for fig7")
    parser.add_argument("--repeats", type=int, default=1)
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="also write machine-readable results "
                             "(fig5, fig6, check)")
    return parser


def main(argv=None) -> None:
    args = build_parser().parse_args(argv)
    {"table1": cmd_table1, "fig5": cmd_fig5, "fig6": cmd_fig6,
     "fig7": cmd_fig7, "fig8": cmd_fig8, "headline": cmd_headline,
     "check": cmd_check}[args.command](args)


if __name__ == "__main__":
    main()
