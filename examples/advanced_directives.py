"""Tour of the less-common OpenMP 3.0 constructs OMP4Py covers:
sections, single with copyprivate, ordered loops, declare reduction,
threadprivate with copyin, and the lock API.

Run with::

    python examples/advanced_directives.py
"""

from repro import (omp, omp_get_thread_num, omp_init_lock, omp_set_lock,
                   omp_unset_lock)

RNG_STATE = 12345  # threadprivate seed, one generator per thread


@omp
def pipeline_sections(items):
    """Three independent pipeline stages via sections."""
    parsed = []
    validated = []
    stats = {}
    with omp("parallel num_threads(3)"):
        with omp("sections"):
            with omp("section"):
                for item in items:
                    parsed.append(item.strip().lower())
            with omp("section"):
                for item in items:
                    validated.append(item.isalpha())
            with omp("section"):
                stats["total"] = len(items)
    return parsed, validated, stats


@omp
def broadcast_with_copyprivate():
    """One thread computes a configuration; copyprivate shares it."""
    config = None
    seen = []
    with omp("parallel num_threads(4) private(config)"):
        with omp("single copyprivate(config)"):
            config = {"chunk": 64, "origin": omp_get_thread_num()}
        with omp("critical"):
            seen.append(config["chunk"])
    return seen


@omp
def ordered_output(n):
    """Dynamic scheduling with deterministic, ordered side effects."""
    log = []
    with omp("parallel for ordered schedule(dynamic, 1) num_threads(4)"):
        for i in range(n):
            squared = i * i  # computed out of order, in parallel
            with omp("ordered"):
                log.append(f"{i}^2 = {squared}")  # emitted in order
    return log


@omp
def longest_word(words):
    """A user-declared reduction: pick the longest string."""
    omp("declare reduction(longer: omp_out if len(omp_out) >= "
        "len(omp_in) else omp_in) initializer('')")
    best = ""
    with omp("parallel for reduction(longer: best) num_threads(4)"):
        for i in range(len(words)):
            if len(words[i]) > len(best):
                best = words[i]
    return best


@omp
def threadprivate_rng(samples):
    """Each thread owns a threadprivate LCG seeded via copyin."""
    omp("threadprivate(RNG_STATE)")
    draws = []
    with omp("parallel num_threads(3) copyin(RNG_STATE)"):
        mine = []
        for _ in range(samples):
            RNG_STATE = (1103515245 * RNG_STATE + 12345) % (1 << 31)
            mine.append(RNG_STATE % 100)
        with omp("critical"):
            draws.append(mine)
    return draws


@omp
def _record_under_lock(n, lock, ledger):
    # The decorator only accepts module-level functions (no closures),
    # so the lock and ledger arrive as arguments.
    with omp("parallel for num_threads(4)"):
        for i in range(n):
            omp_set_lock(lock)
            ledger.append(i)
            omp_unset_lock(lock)


def locks_demo():
    """The OpenMP lock API, usable outside directives too."""
    lock = omp_init_lock()
    ledger = []
    _record_under_lock(100, lock, ledger)
    return sorted(ledger) == list(range(100))


def main() -> None:
    parsed, validated, stats = pipeline_sections(
        [" Alpha", "beta ", "Gamma3"])
    print("sections:       ", parsed, validated, stats)
    print("copyprivate:    ", broadcast_with_copyprivate())
    print("ordered:        ", ordered_output(6)[:3], "...")
    print("declare red.:   ",
          longest_word(["ant", "gnu", "elephant", "ox"]))
    print("threadprivate:  ", threadprivate_rng(3))
    print("locks:          ", locks_demo())


if __name__ == "__main__":
    main()
